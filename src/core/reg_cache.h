// reg_cache.h - registration caching for dynamic zero-copy protocols.
//
// The paper's introduction: dynamic registration is unavoidable for zero-copy
// MPI ("the buffers must be registered on the fly... the bad effects can be
// remedied by 'caching' registered regions, i.e. by keeping them registered
// as long as possible"). RegistrationCache implements exactly that over the
// VIPL: acquire() reuses a live or idle cached registration that covers the
// request; release() keeps idle registrations cached; TPT exhaustion evicts
// idle entries by a pluggable policy (the E9 ablation).
//
// The cache is dual-keyed (DESIGN.md section 9): `entries_` owns the
// registrations keyed by id (the release/evict handle path), and a flat
// vaddr-sorted interval index serves the covering lookup on the acquire hot
// path - a binary search plus a short backward walk bounded by the largest
// cached registration, instead of the seed's scan of every entry. An ordered
// idle index keyed by the eviction policy's key makes victim selection and
// the idle count O(log n)/O(1). E22 measures the scaling win.
//
// When a PinGovernor is passed in Config, the cache registers itself as a
// ReclaimClient: under memory pressure (or a guaranteed tenant's admission
// shortfall) the governor asks it to evict cold idle entries, releasing
// pinned pages cooperatively before the kernel has to swap hot ones.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "pinmgr/pin_governor.h"
#include "util/status.h"
#include "via/vipl.h"

namespace vialock::core {

enum class EvictionPolicy : std::uint8_t {
  None,  ///< never cache: deregister as soon as the last user releases
  Lru,   ///< evict the least recently used idle registration
  Fifo,  ///< evict the oldest idle registration
};

[[nodiscard]] constexpr std::string_view to_string(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::None: return "none";
    case EvictionPolicy::Lru: return "LRU";
    case EvictionPolicy::Fifo: return "FIFO";
  }
  return "?";
}

struct RegCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t registrations = 0;
  std::uint64_t deregistrations = 0;
  std::uint64_t reclaim_evictions = 0;  ///< evictions the governor asked for
  std::uint64_t bad_releases = 0;  ///< release() of an unknown handle or an
                                   ///< already-idle entry (caller bug, kept
                                   ///< a safe no-op - never corrupts the
                                   ///< cache, in any build type)
  std::uint64_t lookaside_hits = 0;    ///< acquire served by the lookaside
                                       ///< (zero index scans)
  std::uint64_t lookaside_misses = 0;  ///< acquire fell through to the
                                       ///< dual-keyed index
  std::uint64_t lookaside_invalidations = 0;  ///< generation bumps (every
                                              ///< structural change)
};

class RegistrationCache : public pinmgr::ReclaimClient {
 public:
  struct Config {
    EvictionPolicy policy = EvictionPolicy::Lru;
    /// Cap on idle cached registrations (on top of TPT pressure eviction).
    std::size_t max_idle = 1024;
    /// When set, the cache volunteers its idle entries for cooperative
    /// reclaim. The governor must outlive the cache.
    pinmgr::PinGovernor* governor = nullptr;
  };

  explicit RegistrationCache(via::Vipl& vipl)
      : RegistrationCache(vipl, Config{}) {}
  /// Registers the cache's stats with the node kernel's metric registry
  /// (source "core.regcache.p<pid>") and mounts /proc/regcache/p<pid>.
  RegistrationCache(via::Vipl& vipl, Config config);

  RegistrationCache(const RegistrationCache&) = delete;
  RegistrationCache& operator=(const RegistrationCache&) = delete;
  ~RegistrationCache() override;

  /// ReclaimClient: evict cold idle entries until `target_pages` pinned
  /// pages are released (or nothing idle remains). Returns pages released.
  std::uint32_t reclaim_idle(std::uint32_t target_pages) override;

  /// Hand out a registration covering [addr, addr+len), registering on miss.
  /// Evicts idle entries and retries when the TPT is full.
  [[nodiscard]] KStatus acquire(simkern::VAddr addr, std::uint64_t len,
                                via::MemHandle& out);

  /// Return a handle obtained from acquire(). The registration stays cached
  /// (policy != None) until evicted. Releasing a handle the cache does not
  /// know, or one whose entry is already idle, is a counted no-op
  /// (stats().bad_releases) - never an underflow or a wild dereference.
  void release(const via::MemHandle& handle);

  /// Deregister every idle cached entry.
  void flush();

  [[nodiscard]] const RegCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t idle_cached() const { return idle_.size(); }
  [[nodiscard]] std::size_t live() const { return rows_.size(); }

 private:
  /// One cached registration, stored *inline* in the vaddr-sorted interval
  /// index. The acquire hit path therefore touches exactly two arrays - the
  /// packed key vector it binary-searched and the row it lands on - and never
  /// chases a node of the id map (whose scattered nodes would cost a cache
  /// miss per lookup once thousands of registrations are cached).
  struct Entry {
    via::MemHandle handle;
    std::uint32_t refs = 0;
    std::uint64_t last_use = 0;  ///< LRU tick
    std::uint64_t seq = 0;       ///< FIFO sequence

    [[nodiscard]] bool operator<(const Entry& o) const {
      return handle.vaddr != o.handle.vaddr ? handle.vaddr < o.handle.vaddr
                                            : handle.id < o.handle.id;
    }
  };

  /// The cached entry covering [addr, addr+len) with the smallest id (the
  /// entry the seed's id-ordered linear scan would return), or nullptr.
  /// Binary search on the packed keys, then a backward walk bounded by the
  /// largest cached registration length.
  [[nodiscard]] Entry* find_covering(simkern::VAddr addr, std::uint64_t len);

  /// The eviction key of `e` under the configured policy (FIFO: insertion
  /// sequence; LRU: last-use tick). Unique per entry: ticks and sequence
  /// numbers are handed out once.
  [[nodiscard]] std::uint64_t evict_key(const Entry& e) const {
    return config_.policy == EvictionPolicy::Fifo ? e.seq : e.last_use;
  }

  /// Evict one idle entry per policy; returns the pages it released
  /// (0 when nothing is evictable).
  std::uint32_t evict_one();
  void enforce_idle_cap();

  /// Index of the row holding registration (vaddr, id); rows_.size() if
  /// absent. O(log n) over the packed keys.
  [[nodiscard]] std::size_t row_of(simkern::VAddr vaddr,
                                   std::uint64_t id) const;

  // --- per-VI lookaside ------------------------------------------------------
  // A direct-mapped cache keyed on the exact (addr, len) of recent acquires,
  // sitting in front of the dual-keyed index: a hit touches one slot and one
  // row - zero key scans. Stored row indexes are only trusted while `gen`
  // equals generation_, which insert_entry/erase_entry bump on EVERY
  // structural change (both shift rows_). While the generation matches, the
  // entry set is unchanged, so find_covering(addr, len) would return exactly
  // the row recorded at fill time - an eviction, deregistration, or
  // refresh-relocation can therefore never serve a stale TPT index through
  // the lookaside (DESIGN.md section 14.3; debug builds assert equivalence).
  struct LookasideSlot {
    simkern::VAddr addr = 0;
    std::uint64_t len = 0;
    std::uint32_t row = 0;
    std::uint64_t gen = 0;  ///< valid iff == generation_
  };
  static constexpr std::size_t kLookasideSlots = 64;
  [[nodiscard]] static std::size_t lookaside_slot(simkern::VAddr addr,
                                                  std::uint64_t len) {
    // SplitMix64-style mix of the exact request key.
    std::uint64_t h = addr ^ (len * 0x9E3779B97F4A7C15ULL);
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    return static_cast<std::size_t>(h % kLookasideSlots);
  }
  void lookaside_fill(simkern::VAddr addr, std::uint64_t len, std::size_t row);
  void lookaside_invalidate_all() {
    ++generation_;
    ++stats_.lookaside_invalidations;
  }
  /// Rebuild tops_ from keys_ (O(n/64); runs on the insert/erase slow path).
  void rebuild_tops();
  void insert_entry(Entry&& e);
  /// Deregister and drop `it`'s registration from every index.
  /// Invalidates `it` and every row index/reference.
  void erase_entry(std::map<std::uint64_t, simkern::VAddr>::iterator it);

  via::Vipl& vipl_;
  Config config_;
  RegCacheStats stats_;
  /// Acquire latency distribution (hits are cheap, misses pay an ioctl).
  obs::Histogram& acquire_ns_;
  /// The registry/procfs names this cache registered (pid-suffixed so two
  /// processes' caches on one node do not collide).
  std::string source_name_;
  std::string proc_path_;
  /// The owning interval index: sorted by (vaddr, id). Flat for lookup
  /// locality; insert and erase are O(n) moves but only run on the
  /// miss/evict slow path.
  std::vector<Entry> rows_;
  /// rows_[i].handle.vaddr, duplicated densely and sentinel-padded to a
  /// whole number of 64-key blocks: the lookup probes only these 8-byte
  /// keys, so even a 4096-entry search stays inside a few KB of cache
  /// instead of striding over full rows.
  std::vector<simkern::VAddr> keys_;
  /// The last key of each 64-key block of keys_, sentinel-padded to a full
  /// block: the covering lookup scans this sample (512 bytes, always
  /// cache-hot) and then one 512-byte block of keys_ - two fixed-width
  /// branch-free scans, so lookup cost stays essentially flat as the cache
  /// grows from dozens to thousands of entries. See find_covering.
  std::vector<simkern::VAddr> tops_;
  /// id -> vaddr, the release/evict/flush handle path (those arrive with an
  /// id, not a position). Iterated in id order by flush().
  std::map<std::uint64_t, simkern::VAddr> ids_;
  /// Lengths of all cached registrations; the max bounds the covering walk.
  std::multiset<std::uint64_t> lengths_;
  std::uint64_t max_len_ = 0;  ///< cached *lengths_.rbegin() (hot-path copy)
  /// Idle (refs == 0) entries keyed by eviction key: begin() is the victim.
  std::map<std::uint64_t, std::uint64_t> idle_;  ///< evict key -> id
  std::uint64_t tick_ = 0;
  std::uint64_t seq_ = 0;
  std::array<LookasideSlot, kLookasideSlots> lookaside_{};
  std::uint64_t generation_ = 1;  ///< starts above LookasideSlot::gen's 0
};

}  // namespace vialock::core
