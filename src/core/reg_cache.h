// reg_cache.h - registration caching for dynamic zero-copy protocols.
//
// The paper's introduction: dynamic registration is unavoidable for zero-copy
// MPI ("the buffers must be registered on the fly... the bad effects can be
// remedied by 'caching' registered regions, i.e. by keeping them registered
// as long as possible"). RegistrationCache implements exactly that over the
// VIPL: acquire() reuses a live or idle cached registration that covers the
// request; release() keeps idle registrations cached; TPT exhaustion evicts
// idle entries by a pluggable policy (the E9 ablation).
//
// When a PinGovernor is passed in Config, the cache registers itself as a
// ReclaimClient: under memory pressure (or a guaranteed tenant's admission
// shortfall) the governor asks it to evict cold idle entries, releasing
// pinned pages cooperatively before the kernel has to swap hot ones.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string_view>

#include "pinmgr/pin_governor.h"
#include "util/status.h"
#include "via/vipl.h"

namespace vialock::core {

enum class EvictionPolicy : std::uint8_t {
  None,  ///< never cache: deregister as soon as the last user releases
  Lru,   ///< evict the least recently used idle registration
  Fifo,  ///< evict the oldest idle registration
};

[[nodiscard]] constexpr std::string_view to_string(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::None: return "none";
    case EvictionPolicy::Lru: return "LRU";
    case EvictionPolicy::Fifo: return "FIFO";
  }
  return "?";
}

struct RegCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t registrations = 0;
  std::uint64_t deregistrations = 0;
  std::uint64_t reclaim_evictions = 0;  ///< evictions the governor asked for
};

class RegistrationCache : public pinmgr::ReclaimClient {
 public:
  struct Config {
    EvictionPolicy policy = EvictionPolicy::Lru;
    /// Cap on idle cached registrations (on top of TPT pressure eviction).
    std::size_t max_idle = 1024;
    /// When set, the cache volunteers its idle entries for cooperative
    /// reclaim. The governor must outlive the cache.
    pinmgr::PinGovernor* governor = nullptr;
  };

  explicit RegistrationCache(via::Vipl& vipl)
      : RegistrationCache(vipl, Config{}) {}
  RegistrationCache(via::Vipl& vipl, Config config)
      : vipl_(vipl), config_(config) {
    if (config_.governor) config_.governor->add_reclaim_client(this);
  }

  RegistrationCache(const RegistrationCache&) = delete;
  RegistrationCache& operator=(const RegistrationCache&) = delete;
  ~RegistrationCache() override {
    flush();
    if (config_.governor) config_.governor->remove_reclaim_client(this);
  }

  /// ReclaimClient: evict cold idle entries until `target_pages` pinned
  /// pages are released (or nothing idle remains). Returns pages released.
  std::uint32_t reclaim_idle(std::uint32_t target_pages) override;

  /// Hand out a registration covering [addr, addr+len), registering on miss.
  /// Evicts idle entries and retries when the TPT is full.
  [[nodiscard]] KStatus acquire(simkern::VAddr addr, std::uint64_t len,
                                via::MemHandle& out);

  /// Return a handle obtained from acquire(). The registration stays cached
  /// (policy != None) until evicted.
  void release(const via::MemHandle& handle);

  /// Deregister every idle cached entry.
  void flush();

  [[nodiscard]] const RegCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t idle_cached() const;
  [[nodiscard]] std::size_t live() const { return entries_.size(); }

 private:
  struct Entry {
    via::MemHandle handle;
    std::uint32_t refs = 0;
    std::uint64_t last_use = 0;  ///< LRU tick
    std::uint64_t seq = 0;       ///< FIFO sequence
  };

  /// Find a cached entry covering the aligned range, or entries_.end().
  [[nodiscard]] std::map<std::uint64_t, Entry>::iterator find_covering(
      simkern::VAddr addr, std::uint64_t len);

  /// Evict one idle entry per policy; returns the pages it released
  /// (0 when nothing is evictable).
  std::uint32_t evict_one();
  void enforce_idle_cap();

  via::Vipl& vipl_;
  Config config_;
  RegCacheStats stats_;
  std::map<std::uint64_t, Entry> entries_;  ///< keyed by registration id
  std::uint64_t tick_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace vialock::core
