#include "core/registry.h"

#include <cassert>

namespace vialock::core {

PinnedRegion& PinnedRegion::operator=(PinnedRegion&& other) noexcept {
  if (this != &other) {
    reset();
    locker_ = other.locker_;
    kiobuf_ = std::move(other.kiobuf_);
    other.locker_ = nullptr;
    other.kiobuf_ = simkern::Kiobuf{};
  }
  return *this;
}

PinnedRegion::~PinnedRegion() { reset(); }

void PinnedRegion::reset() {
  if (locker_) {
    locker_->unlock(kiobuf_);
    locker_ = nullptr;
    kiobuf_ = simkern::Kiobuf{};
  }
}

KStatus ReliableLocker::lock(simkern::Pid pid, simkern::VAddr addr,
                             std::uint64_t len, PinnedRegion& out) {
  simkern::Kiobuf kiobuf = kern_.alloc_kiovec();
  const KStatus st = kern_.map_user_kiobuf(pid, kiobuf, addr, len);
  if (!ok(st)) return st;
  ++live_pins_;
  ++total_locks_;
  out = PinnedRegion{this, std::move(kiobuf)};
  return KStatus::Ok;
}

void ReliableLocker::unlock(simkern::Kiobuf& kiobuf) {
  assert(live_pins_ > 0);
  kern_.unmap_kiobuf(kiobuf);
  --live_pins_;
}

}  // namespace vialock::core
