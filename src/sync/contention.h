// contention.h - optional per-lock contention statistics for the sync facade.
//
// The threaded execution mode's most important new signals are how the CNA
// mutex (arXiv 1810.05600) and the range lock (arXiv 2006.12144) actually
// behave under load: how often an acquisition finds the queue occupied, how
// long the waiter spins, how often a release bypasses remote waiters onto
// the secondary queue, and how often the fairness flush has to splice them
// back. A ContentionStats block records exactly that; a lock carries only a
// nullable pointer to one, so the owner of an *interesting* lock (a node's
// host mutex, the kernel's reclaim/task locks, the scheduler's post mutex)
// opts in while the thousands of uninstrumented locks pay one pointer.
//
// Serial mode never touches any of this: every counter update sits behind
// the primitives' `if (!enabled_)` early return, so the serial hot path
// stays a single branch and serial metric exports show no sync.* entries
// at all.
//
// Wait times are measured in *wall* nanoseconds (steady_clock around the
// spin loop) - virtual time does not advance while a waiter spins, and the
// whole block is only populated in threaded runs, where the determinism
// contract already excludes time-shaped scalars (DESIGN.md section 15).
// This header must not depend on src/obs (obs depends on sync), so it
// carries its own small log2 wait histogram; obs::emit_contention()
// (obs/metrics.h) renders it through the metric registry.
#pragma once

#include <cstdint>

#include "sync/relaxed.h"

namespace vialock::sync {

/// Log2-bucketed wait-time histogram (bucket i = values of bit-width i,
/// the same bucketing as obs::Histogram, compacted to 48 buckets - 2^47 ns
/// is ~39 hours, far past any wait this repo can produce).
struct WaitHistogram {
  static constexpr std::size_t kBuckets = 48;

  void add(std::uint64_t ns) {
    buckets[bucket_of(ns)] += 1;
    count += 1;
    sum += ns;
    max.fetch_max(ns);
  }

  /// Upper bound of the bucket holding quantile q in [0,1]; 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    const std::uint64_t n = count.load();
    if (n == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets[i];
      if (seen > target) return upper_bound(i);
    }
    return upper_bound(kBuckets - 1);
  }

  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    const auto w = static_cast<std::size_t>(64 - __builtin_clzll(v));
    return w < kBuckets ? w : kBuckets - 1;
  }
  [[nodiscard]] static constexpr std::uint64_t upper_bound(std::size_t i) {
    return i == 0 ? 0 : (1ULL << i) - 1;
  }

  Relaxed buckets[kBuckets];
  Relaxed count;
  Relaxed sum;
  Relaxed max;
};

/// Counters for one instrumented sync::Mutex. All Relaxed: updates come
/// from whichever worker holds (or wants) the lock; totals are exact.
struct ContentionStats {
  Relaxed acquisitions;        ///< non-recursive lock()/try_lock() grants
  Relaxed contended;           ///< lock() calls that found a queue and spun
  Relaxed handoffs;            ///< releases that passed the lock to a waiter
  Relaxed secondary_handoffs;  ///< releases with remote waiters parked
  Relaxed flushes;             ///< fairness flushes (secondary queue spliced)
  Relaxed try_failures;        ///< try_lock() attempts that found the queue busy
  WaitHistogram wait_ns;       ///< contended-acquisition spin time (wall ns)
};

/// Counters for one instrumented sync::RangeLock beyond its built-in
/// acquired/contended pair: how blocked tickets behave while queued.
struct RangeContentionStats {
  Relaxed wait_rounds;   ///< grantability re-checks by queued waiters
  Relaxed try_failures;  ///< try_lock conflicts (reclaim skipping a range)
  Relaxed peak_waiters;  ///< deepest waiter queue observed
};

}  // namespace vialock::sync
