// sync.h - umbrella for the sync facade: SyncPolicy, Mutex/Guard,
// RangeLock/RangeGuard, Relaxed. Subsystems include this and nothing else
// for synchronization (DESIGN.md section 15).
#pragma once

#include "sync/contention.h"  // IWYU pragma: export
#include "sync/mutex.h"       // IWYU pragma: export
#include "sync/policy.h"      // IWYU pragma: export
#include "sync/range_lock.h"  // IWYU pragma: export
#include "sync/relaxed.h"     // IWYU pragma: export
