// mutex.h - compact NUMA-aware (CNA) queue mutex behind the sync facade.
//
// Threaded mode implements the CNA lock of Dice & Kogan (arXiv 1810.05600):
// an MCS-style FIFO queue where the holder, on release, prefers to hand the
// lock to a waiter from its own NUMA domain and parks the bypassed remote
// waiters on a secondary queue; a periodic flush splices the secondary
// queue back so no domain starves. The NUMA domain is the simulated one a
// worker thread declared via sync::set_thread_numa(), so the policy is
// exercised (and testable) even on a single-socket build machine.
//
// Deviations from the paper, both deliberate:
//  - waiters yield() instead of pausing: the CI runners and dev containers
//    are core-starved (sometimes nproc==1) and a spinning waiter would
//    starve the holder it is waiting for;
//  - the mutex is recursive (owner thread + depth): the pin governor's
//    charge -> drain -> finish_dereg -> uncharge chain and the kernel
//    agent's release paths legitimately re-enter, and a non-recursive
//    queue lock would self-deadlock there.
//
// Serial mode turns lock/unlock/try_lock into a single branch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sync/contention.h"
#include "sync/policy.h"

namespace vialock::sync {

class Mutex {
 public:
  Mutex() = default;
  explicit Mutex(SyncPolicy p) : enabled_(p.is_threaded()) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Switch modes. Only legal while no thread holds or waits on the mutex
  /// (nodes are constructed serial and switched before workers spawn).
  void set_policy(SyncPolicy p) { enabled_ = p.is_threaded(); }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Opt this lock into the contention profiler (nullptr detaches). The
  /// stats block must outlive the mutex; attach before workers spawn.
  /// Serial mode never reads or writes it.
  void set_stats(ContentionStats* stats) { stats_ = stats; }

  void lock() {
    if (!enabled_) return;
    const std::thread::id tid = std::this_thread::get_id();
    if (owner_.load(std::memory_order_relaxed) == tid) {
      ++depth_;
      return;
    }
    Node* me = node_pool().take();
    enqueue_and_wait(me);
    holder_ = me;
    owner_.store(tid, std::memory_order_relaxed);
    depth_ = 1;
    if (stats_ != nullptr) stats_->acquisitions += 1;
  }

  /// One-shot attempt; succeeds only when the queue is empty (or on
  /// recursion). Never enqueues, so it cannot be handed a lock later.
  bool try_lock() {
    if (!enabled_) return true;
    const std::thread::id tid = std::this_thread::get_id();
    if (owner_.load(std::memory_order_relaxed) == tid) {
      ++depth_;
      return true;
    }
    if (tail_.load(std::memory_order_relaxed) != nullptr) {
      if (stats_ != nullptr) stats_->try_failures += 1;
      return false;
    }
    Node* me = node_pool().take();
    me->reset();
    Node* expected = nullptr;
    if (!tail_.compare_exchange_strong(expected, me,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      node_pool().give(me);
      if (stats_ != nullptr) stats_->try_failures += 1;
      return false;
    }
    me->spin.store(kLocked, std::memory_order_relaxed);
    holder_ = me;
    owner_.store(tid, std::memory_order_relaxed);
    depth_ = 1;
    if (stats_ != nullptr) stats_->acquisitions += 1;
    return true;
  }

  void unlock() {
    if (!enabled_) return;
    if (--depth_ > 0) return;
    Node* me = holder_;
    holder_ = nullptr;
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
    release(me);
    node_pool().give(me);
  }

 private:
  // spin field protocol: 0 = waiting, kLocked = lock granted with empty
  // secondary queue, any other value = lock granted and the value is the
  // secondary-queue head (paper's encoding).
  static constexpr std::uintptr_t kLocked = 1;
  // Splice the secondary queue back into the main queue every N handoffs
  // that bypassed it - the paper's starvation bound, made deterministic.
  static constexpr std::uint32_t kFlushPeriod = 256;

  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uintptr_t> spin{0};
    Node* sec_tail = nullptr;  // valid on a secondary-queue head
    int numa = 0;

    void reset() {
      next.store(nullptr, std::memory_order_relaxed);
      spin.store(0, std::memory_order_relaxed);
      sec_tail = nullptr;
      numa = thread_numa();
    }
  };

  // Per-thread node freelist. A thread needs one live node per mutex it
  // currently holds or waits on (nested acquisition), and a node is
  // reusable the moment its lock is handed off, so a small LIFO pool is
  // enough. Nodes die with the thread; by then it holds no locks.
  struct NodePool {
    std::vector<std::unique_ptr<Node>> storage;
    std::vector<Node*> free;

    Node* take() {
      if (free.empty()) {
        storage.push_back(std::make_unique<Node>());
        return storage.back().get();
      }
      Node* n = free.back();
      free.pop_back();
      return n;
    }
    void give(Node* n) { free.push_back(n); }
  };

  static NodePool& node_pool() {
    thread_local NodePool pool;
    return pool;
  }

  void enqueue_and_wait(Node* me) {
    me->reset();
    Node* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev == nullptr) {
      me->spin.store(kLocked, std::memory_order_relaxed);
      return;
    }
    prev->next.store(me, std::memory_order_release);
    if (stats_ == nullptr) {
      while (me->spin.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();
      return;
    }
    // Contended acquisition: meter the spin in wall ns (virtual time does
    // not advance while waiting; see contention.h).
    stats_->contended += 1;
    const auto begin = std::chrono::steady_clock::now();
    while (me->spin.load(std::memory_order_acquire) == 0)
      std::this_thread::yield();
    stats_->wait_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin)
            .count()));
  }

  void release(Node* me) {
    const std::uintptr_t sp = me->spin.load(std::memory_order_relaxed);
    if (stats_ != nullptr && sp != kLocked) stats_->secondary_handoffs += 1;
    Node* next = me->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      if (sp == kLocked) {
        Node* expected = me;
        if (tail_.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed))
          return;
      } else {
        // Main queue drained but remote waiters are parked: promote the
        // secondary queue to main (its tail becomes the lock tail).
        Node* sec = reinterpret_cast<Node*>(sp);
        Node* expected = me;
        if (tail_.compare_exchange_strong(expected, sec->sec_tail,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          if (stats_ != nullptr) stats_->handoffs += 1;
          sec->spin.store(kLocked, std::memory_order_release);
          return;
        }
      }
      // An enqueuer won the tail race; wait for it to link itself.
      while ((next = me->next.load(std::memory_order_acquire)) == nullptr)
        std::this_thread::yield();
    }
    if (stats_ != nullptr) stats_->handoffs += 1;
    if (sp != kLocked && ++handoffs_ % kFlushPeriod == 0) {
      // Fairness flush: hand to the parked remote waiters, appending the
      // current main queue behind them.
      if (stats_ != nullptr) stats_->flushes += 1;
      Node* sec = reinterpret_cast<Node*>(sp);
      sec->sec_tail->next.store(next, std::memory_order_relaxed);
      sec->spin.store(kLocked, std::memory_order_release);
      return;
    }
    std::uintptr_t pass = sp;
    Node* succ = find_successor(me, next, pass);
    if (succ != nullptr) {
      succ->spin.store(pass == 0 ? kLocked : pass, std::memory_order_release);
      return;
    }
    // No same-domain waiter is linked yet: hand off in FIFO order, with
    // any parked secondary queue spliced in front (it has waited longest).
    if (sp != kLocked) {
      Node* sec = reinterpret_cast<Node*>(sp);
      sec->sec_tail->next.store(next, std::memory_order_relaxed);
      sec->spin.store(kLocked, std::memory_order_release);
    } else {
      next->spin.store(kLocked, std::memory_order_release);
    }
  }

  /// Paper's find_successor: first linked waiter from the holder's NUMA
  /// domain. Bypassed waiters move to the secondary queue carried in
  /// `pass` (spin-field encoding; updated in place). Returns nullptr when
  /// no same-domain waiter is linked.
  Node* find_successor(Node* me, Node* head, std::uintptr_t& pass) {
    const int domain = me->numa;
    Node* cur = head;
    Node* pred = nullptr;
    while (cur != nullptr) {
      if (cur->numa == domain) {
        if (cur != head) {
          // Park [head..pred] on the secondary queue.
          pred->next.store(nullptr, std::memory_order_relaxed);
          if (pass == kLocked || pass == 0) {
            head->sec_tail = pred;
            pass = reinterpret_cast<std::uintptr_t>(head);
          } else {
            Node* sec = reinterpret_cast<Node*>(pass);
            sec->sec_tail->next.store(head, std::memory_order_relaxed);
            sec->sec_tail = pred;
          }
        }
        return cur;
      }
      pred = cur;
      cur = cur->next.load(std::memory_order_acquire);
    }
    return nullptr;
  }

  std::atomic<Node*> tail_{nullptr};
  std::atomic<std::thread::id> owner_{};
  Node* holder_ = nullptr;      // holder's queue node; guarded by the lock
  std::uint32_t depth_ = 0;     // recursion depth; guarded by the lock
  std::uint32_t handoffs_ = 0;  // local handoffs since last flush; ditto
  ContentionStats* stats_ = nullptr;  // optional profiler block (contention.h)
  bool enabled_ = false;
};

/// RAII scope for a try_lock attempt: holds the mutex only when the
/// attempt succeeded. In serial mode try_lock always succeeds, so serial
/// code never takes the "skip" branch.
class TryGuard {
 public:
  explicit TryGuard(Mutex& mu) : mu_(mu.try_lock() ? &mu : nullptr) {}
  ~TryGuard() {
    if (mu_ != nullptr) mu_->unlock();
  }
  TryGuard(const TryGuard&) = delete;
  TryGuard& operator=(const TryGuard&) = delete;

  [[nodiscard]] bool held() const { return mu_ != nullptr; }

 private:
  Mutex* mu_;
};

/// RAII scope for sync::Mutex (the facade's only way to hold one).
class Guard {
 public:
  explicit Guard(Mutex& mu) : mu_(&mu) { mu_->lock(); }
  ~Guard() {
    if (mu_ != nullptr) mu_->unlock();
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  /// Release early (end of the protected region before scope exit).
  void release() {
    if (mu_ != nullptr) mu_->unlock();
    mu_ = nullptr;
  }

 private:
  Mutex* mu_;
};

}  // namespace vialock::sync
