// gate.h - epoch start/done gate for worker pools, part of the sync facade.
//
// The one place a blocking OS primitive (mutex + condition variable) is
// appropriate here: parking a worker pool between epochs. Lives in
// src/sync/ so no other subsystem names a concrete lock type.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace vialock::sync {

/// Coordinates N workers through numbered epochs: the coordinator announces
/// an epoch and waits for all workers to finish it; workers park between
/// epochs. stop() releases everyone for shutdown.
class WorkerGate {
 public:
  /// Coordinator: announce the next epoch for `workers` workers.
  void start_epoch(std::uint32_t workers) {
    {
      std::lock_guard<std::mutex> l(mu_);
      working_ = workers;
      ++epoch_;
    }
    cv_start_.notify_all();
  }

  /// Worker: park until an epoch newer than `seen` (returns its number) or
  /// shutdown (returns 0; epoch numbers start at 1).
  [[nodiscard]] std::uint64_t await_epoch(std::uint64_t seen) {
    std::unique_lock<std::mutex> l(mu_);
    cv_start_.wait(l, [&] { return stop_ || epoch_ != seen; });
    return stop_ ? 0 : epoch_;
  }

  /// Worker: report this epoch's share done.
  void done() {
    std::lock_guard<std::mutex> l(mu_);
    if (--working_ == 0) cv_done_.notify_one();
  }

  /// Coordinator: block until every worker reported done().
  void await_done() {
    std::unique_lock<std::mutex> l(mu_);
    cv_done_.wait(l, [&] { return working_ == 0; });
  }

  /// Coordinator: release parked workers for shutdown.
  void stop() {
    {
      std::lock_guard<std::mutex> l(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  std::uint32_t working_ = 0;
  bool stop_ = false;
};

}  // namespace vialock::sync
