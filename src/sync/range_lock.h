// range_lock.h - address-range lock behind the sync facade.
//
// Guards address-range operations (registration/mlock/VMA split vs the
// reclaim walk) the way Kogan, Dice & Issa's scalable range lock does
// (arXiv 2006.12144): acquiring [lo, hi) inserts the range into a shared
// set of held ranges and conflicts only with overlapping ranges, so
// disjoint-range operations - the common case for concurrent registration
// - proceed in parallel. Ranges are namespaced by a 64-bit `space` (the
// pid here), acquire shared or exclusive, and reclaim uses try_lock so a
// walker skips pages a registration is mid-flight on instead of blocking.
//
// Simplifications vs the paper, both deliberate: the range set is a flat
// vector under an internal CNA mutex rather than a lock-free skip list
// (held-range counts here are tens, not thousands), and waiters take FIFO
// tickets - a blocked exclusive acquirer stalls later overlapping
// acquirers - which buys the writer-starvation freedom the paper gets
// from its insert-before-wait protocol.
//
// Serial mode turns every operation into a single branch.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "sync/contention.h"
#include "sync/mutex.h"
#include "sync/policy.h"
#include "sync/relaxed.h"

namespace vialock::sync {

enum class RangeMode : std::uint8_t { Shared, Exclusive };

class RangeLock {
 public:
  RangeLock() = default;
  explicit RangeLock(SyncPolicy p) { set_policy(p); }
  RangeLock(const RangeLock&) = delete;
  RangeLock& operator=(const RangeLock&) = delete;

  /// Switch modes; only legal while no range is held or waited on.
  void set_policy(SyncPolicy p) {
    enabled_ = p.is_threaded();
    mu_.set_policy(p);
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Opt this lock into the contention profiler (nullptr detaches). The
  /// stats block must outlive the lock; attach before workers spawn.
  /// Serial mode never reads or writes it. The internal mutex can be
  /// instrumented separately via `internal_mutex().set_stats(...)`.
  void set_stats(RangeContentionStats* stats) { stats_ = stats; }
  [[nodiscard]] Mutex& internal_mutex() { return mu_; }

  /// Acquire [lo, hi) in `space`. Blocks (yielding) while any overlapping
  /// incompatible range is held or an older waiter is queued on it.
  /// Overlapping shared holders proceed in parallel. Must not be called
  /// for a range overlapping one the same thread already holds exclusive
  /// (use try_lock there - that is the reclaim-vs-own-registration case).
  void lock(std::uint64_t space, std::uint64_t lo, std::uint64_t hi,
            RangeMode mode) {
    if (!enabled_) return;
    const std::thread::id tid = std::this_thread::get_id();
    std::uint64_t ticket = 0;
    bool queued = false;
    for (;;) {
      {
        Guard g(mu_);
        if (grantable(space, lo, hi, mode,
                      queued ? ticket : kNoTicket)) {
          held_.push_back({space, lo, hi, mode, tid});
          if (queued) drop_waiter(ticket);
          ++acquired_;
          return;
        }
        if (!queued) {
          ticket = next_ticket_++;
          waiters_.push_back({space, lo, hi, mode, ticket});
          queued = true;
          ++contended_;
          if (stats_ != nullptr)
            stats_->peak_waiters.fetch_max(waiters_.size());
        } else if (stats_ != nullptr) {
          stats_->wait_rounds += 1;
        }
      }
      std::this_thread::yield();
    }
  }

  /// One-shot attempt against the held set (queued waiters are not
  /// consulted: a try_lock never waits, so it cannot starve them).
  [[nodiscard]] bool try_lock(std::uint64_t space, std::uint64_t lo,
                              std::uint64_t hi, RangeMode mode) {
    if (!enabled_) return true;
    Guard g(mu_);
    if (!grantable(space, lo, hi, mode, kNoTicket)) {
      if (stats_ != nullptr) stats_->try_failures += 1;
      return false;
    }
    held_.push_back({space, lo, hi, mode, std::this_thread::get_id()});
    ++acquired_;
    return true;
  }

  void unlock(std::uint64_t space, std::uint64_t lo, std::uint64_t hi) {
    if (!enabled_) return;
    const std::thread::id tid = std::this_thread::get_id();
    Guard g(mu_);
    for (std::size_t i = held_.size(); i-- > 0;) {
      const Entry& e = held_[i];
      if (e.space == space && e.lo == lo && e.hi == hi && e.owner == tid) {
        held_[i] = held_.back();
        held_.pop_back();
        return;
      }
    }
  }

  /// Acquisitions that found an incompatible holder/waiter on first try.
  [[nodiscard]] std::uint64_t contended() const { return contended_; }
  [[nodiscard]] std::uint64_t acquired() const { return acquired_; }

 private:
  static constexpr std::uint64_t kNoTicket = ~std::uint64_t{0};

  struct Entry {
    std::uint64_t space, lo, hi;
    RangeMode mode;
    std::thread::id owner;
  };
  struct Waiter {
    std::uint64_t space, lo, hi;
    RangeMode mode;
    std::uint64_t ticket;
  };

  static bool overlap(const std::uint64_t alo, const std::uint64_t ahi,
                      const std::uint64_t blo, const std::uint64_t bhi) {
    return alo < bhi && blo < ahi;
  }
  static bool incompatible(RangeMode a, RangeMode b) {
    return a == RangeMode::Exclusive || b == RangeMode::Exclusive;
  }

  /// Grantable when no incompatible overlapping range is held and no
  /// older waiter (smaller ticket) wants an incompatible overlap - the
  /// FIFO rule that keeps a stream of shared acquirers from starving a
  /// queued exclusive one.
  [[nodiscard]] bool grantable(std::uint64_t space, std::uint64_t lo,
                               std::uint64_t hi, RangeMode mode,
                               std::uint64_t ticket) const {
    for (const Entry& e : held_) {
      if (e.space == space && overlap(lo, hi, e.lo, e.hi) &&
          incompatible(mode, e.mode))
        return false;
    }
    for (const Waiter& w : waiters_) {
      if (w.ticket < ticket && w.space == space &&
          overlap(lo, hi, w.lo, w.hi) && incompatible(mode, w.mode))
        return false;
    }
    return true;
  }

  void drop_waiter(std::uint64_t ticket) {
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
      if (waiters_[i].ticket == ticket) {
        waiters_[i] = waiters_.back();
        waiters_.pop_back();
        return;
      }
    }
  }

  Mutex mu_;  // protects held_/waiters_/next_ticket_
  std::vector<Entry> held_;
  std::vector<Waiter> waiters_;
  std::uint64_t next_ticket_ = 0;
  Relaxed acquired_;
  Relaxed contended_;
  RangeContentionStats* stats_ = nullptr;  // optional profiler block
  bool enabled_ = false;
};

/// RAII scope for a held range. Default-constructed = holding nothing;
/// `RangeGuard::try_(...)` returns an empty guard when the range is busy.
class RangeGuard {
 public:
  RangeGuard() = default;
  RangeGuard(RangeLock& rl, std::uint64_t space, std::uint64_t lo,
             std::uint64_t hi, RangeMode mode)
      : rl_(&rl), space_(space), lo_(lo), hi_(hi) {
    rl_->lock(space_, lo_, hi_, mode);
  }
  ~RangeGuard() { release(); }
  RangeGuard(const RangeGuard&) = delete;
  RangeGuard& operator=(const RangeGuard&) = delete;
  RangeGuard(RangeGuard&& o) noexcept
      : rl_(o.rl_), space_(o.space_), lo_(o.lo_), hi_(o.hi_) {
    o.rl_ = nullptr;
  }
  RangeGuard& operator=(RangeGuard&& o) noexcept {
    if (this != &o) {
      release();
      rl_ = o.rl_;
      space_ = o.space_;
      lo_ = o.lo_;
      hi_ = o.hi_;
      o.rl_ = nullptr;
    }
    return *this;
  }

  [[nodiscard]] static RangeGuard try_(RangeLock& rl, std::uint64_t space,
                                       std::uint64_t lo, std::uint64_t hi,
                                       RangeMode mode) {
    RangeGuard g;
    if (rl.try_lock(space, lo, hi, mode)) {
      g.rl_ = &rl;
      g.space_ = space;
      g.lo_ = lo;
      g.hi_ = hi;
    }
    return g;
  }

  /// True when the range is actually held (or the lock is in serial mode,
  /// where every acquisition trivially succeeds).
  [[nodiscard]] bool held() const { return rl_ != nullptr; }

  void release() {
    if (rl_ != nullptr) rl_->unlock(space_, lo_, hi_);
    rl_ = nullptr;
  }

 private:
  RangeLock* rl_ = nullptr;
  std::uint64_t space_ = 0, lo_ = 0, hi_ = 0;
};

}  // namespace vialock::sync
