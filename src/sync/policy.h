// policy.h - the sync facade's mode switch (DESIGN.md section 15).
//
// Every lock in the tree is a sync:: primitive constructed from a
// SyncPolicy. Serial mode turns each primitive into a no-op (one
// predictable branch), so the deterministic single-threaded oracle pays
// nothing for the locking the threaded mode needs. No subsystem outside
// src/sync/ names a concrete lock implementation; they hold sync::Mutex /
// sync::RangeLock members and the policy decides what those cost.
#pragma once

#include <cstdint>

namespace vialock::sync {

enum class SyncMode : std::uint8_t {
  Serial,    ///< single-threaded oracle: all primitives are no-ops
  Threaded,  ///< real threads: CNA mutexes + range locks are live
};

struct SyncPolicy {
  SyncMode mode = SyncMode::Serial;

  [[nodiscard]] static constexpr SyncPolicy serial() {
    return {SyncMode::Serial};
  }
  [[nodiscard]] static constexpr SyncPolicy threaded() {
    return {SyncMode::Threaded};
  }
  [[nodiscard]] constexpr bool is_threaded() const {
    return mode == SyncMode::Threaded;
  }
};

/// Simulated NUMA domain of the calling thread. Executors label their
/// workers once at spawn; the CNA mutex uses it to prefer same-domain
/// handoff. Defaults to domain 0 (every thread local), which degrades the
/// CNA lock to a plain fair queue lock - still correct.
inline thread_local int t_numa_domain = 0;

inline void set_thread_numa(int domain) { t_numa_domain = domain; }
[[nodiscard]] inline int thread_numa() { return t_numa_domain; }

}  // namespace vialock::sync
