// relaxed.h - a copyable relaxed-atomic u64 for statistics counters.
//
// Stats structs (KernelStats, AgentStats, ScenarioCounters, ...) are
// bumped from hot paths that run concurrently in threaded mode. Wrapping
// each field in sync::Relaxed keeps every `++stats_.x` / `stats_.x += n`
// call site compiling unchanged while making the increment a relaxed
// atomic RMW: no torn reads, no TSan reports, no ordering cost. Copying
// (for report snapshots) takes a relaxed load - snapshots are only read
// after the workers have joined, so that is exact there.
#pragma once

#include <atomic>
#include <cstdint>

namespace vialock::sync {

class Relaxed {
 public:
  constexpr Relaxed(std::uint64_t v = 0) noexcept : v_(v) {}  // NOLINT implicit
  Relaxed(const Relaxed& o) noexcept : v_(o.load()) {}
  Relaxed& operator=(const Relaxed& o) noexcept {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  Relaxed& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator std::uint64_t() const noexcept { return load(); }  // NOLINT implicit
  [[nodiscard]] std::uint64_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  Relaxed& operator++() noexcept {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  std::uint64_t operator++(int) noexcept {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }
  Relaxed& operator--() noexcept {
    v_.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }
  Relaxed& operator+=(std::uint64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  Relaxed& operator-=(std::uint64_t d) noexcept {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }

  /// Monotonic max update (histogram max tracking).
  void fetch_max(std::uint64_t v) noexcept {
    std::uint64_t cur = load();
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t> v_;
};

}  // namespace vialock::sync
