// scheduler.h - the event-driven multi-host scheduler.
//
// The benches before this subsystem drove clusters lock-step: every host
// executed its next operation in a fixed round-robin, so a run's virtual
// duration was the *sum* of every host's work on the one shared clock, and
// idle hosts still cost a visit per round. This scheduler replaces that with
// a classic discrete-event loop over scenario time:
//
//   * one binary heap of pending events ordered by (when, seq) - seq is a
//     global monotone counter, so the order is total and deterministic;
//   * each host advances only when it has runnable work: an idle host has no
//     events in the heap and costs nothing;
//   * executing an event runs real substrate operations against the
//     cluster's shared Clock (which acts as a cost meter); the measured
//     delta becomes the event's duration in scenario time, and per-host
//     ready times keep one host's operations from overlapping each other
//     while different hosts proceed concurrently.
//
// Scenario time is therefore a *makespan* across hosts, while the cluster
// clock still accumulates total simulated CPU/wire cost - both are reported.
// Determinism: given the same posted events (same spec + seed), the dispatch
// order, every measured cost, and all statistics are bit-identical.
//
// Execution modes (DESIGN.md section 15): run() is the serial oracle - the
// loop above, byte-identical to what it always was. A ThreadedExecutor
// instead drains the heap in epochs via drain_epoch() and dispatches each
// event through dispatch() from a worker thread; post() is mutex-protected
// (serial policy: a no-op branch) so event bodies can post follow-ups from
// any worker, and now() reports the dispatching event's timestamp through a
// thread-local so event bodies read the same value they would serially.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sync/sync.h"
#include "util/clock.h"

namespace vialock::scenario {

using HostId = std::uint32_t;

class EventScheduler {
 public:
  /// An event's body. Runs substrate work; posts follow-up events.
  using Action = std::function<void()>;

  struct Event {
    Nanos when = 0;
    std::uint64_t seq = 0;
    HostId host = 0;
    Action fn;
  };

  explicit EventScheduler(std::uint32_t hosts,
                          sync::SyncPolicy policy = sync::SyncPolicy::serial())
      : ready_(hosts, 0) {
    post_mu_.set_policy(policy);
  }

  /// Enqueue `fn` at scenario time `when` on behalf of `host`. Events that
  /// share a timestamp dispatch in post order (seq tie-break). Thread-safe
  /// under the threaded policy.
  void post(Nanos when, HostId host, Action fn) {
    sync::Guard g(post_mu_);
    heap_.push(Event{when, next_seq_++, host, std::move(fn)});
    if (heap_.size() > stats_.peak_pending) stats_.peak_pending = heap_.size();
  }

  /// Install a periodic sampling hook (the obs::Sampler driver). The serial
  /// loop fires it at every multiple of `interval` - first tick at
  /// t=interval - just before dispatching the first event at-or-after that
  /// time, so a tick observes exactly the state every earlier event left
  /// behind. Threaded runs ignore the interval and fire once per epoch via
  /// epoch_tick(). The hook must not post events or charge virtual time:
  /// sampling cannot perturb the simulation timeline either way.
  void set_tick(Nanos interval, std::function<void(Nanos)> fn) {
    tick_interval_ = interval;
    next_tick_ = interval;
    tick_ = std::move(fn);
  }

  /// Fire the tick hook once at the current watermark. The threaded
  /// executor calls this from the driver thread after each epoch barrier,
  /// so the hook never races workers.
  void epoch_tick() {
    if (tick_) tick_(now_.load(std::memory_order_relaxed));
  }

  /// Drain the heap serially. Returns the number of events dispatched.
  /// This loop is the determinism oracle - do not reorder it.
  std::uint64_t run() {
    std::uint64_t dispatched = 0;
    while (!heap_.empty()) {
      // Move the action out before popping; pop invalidates the reference.
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      if (tick_ && tick_interval_ != 0) {
        while (next_tick_ <= ev.when) {
          tick_(next_tick_);
          next_tick_ += tick_interval_;
        }
      }
      if (ev.when > now_.load(std::memory_order_relaxed))
        now_.store(ev.when, std::memory_order_relaxed);
      current_host_ = ev.host;
      ev.fn();
      ++dispatched;
    }
    stats_.dispatched += dispatched;
    return dispatched;
  }

  // --- threaded-executor surface ---------------------------------------------
  /// Pop every currently-pending event, in (when, seq) order, into `out`.
  /// Returns false when the heap is empty. Events posted while dispatching
  /// these land in the *next* epoch, which is what makes causality
  /// (post -> later epoch) hold without cross-worker ordering.
  bool drain_epoch(std::vector<Event>& out) {
    out.clear();
    sync::Guard g(post_mu_);
    if (heap_.empty()) return false;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(std::move(const_cast<Event&>(heap_.top())));
      heap_.pop();
    }
    return true;
  }

  /// Run one drained event on the calling worker thread: now() reports the
  /// event's timestamp (thread-locally) for the duration of its body, and
  /// the makespan watermark advances to at least `ev.when`.
  void dispatch(Event& ev) {
    Nanos cur = now_.load(std::memory_order_relaxed);
    while (cur < ev.when &&
           !now_.compare_exchange_weak(cur, ev.when,
                                       std::memory_order_relaxed)) {
    }
    tls_now() = ev.when;
    tls_now_active() = true;
    ev.fn();
    tls_now_active() = false;
    ++stats_.dispatched;
  }

  [[nodiscard]] Nanos now() const {
    if (tls_now_active()) return tls_now();
    return now_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  // --- per-host bookkeeping ---------------------------------------------------
  // ready_ entries need no atomics even threaded: an event only touches the
  // ready times of hosts in its lock set (engine HostGuard), and lanes keep
  // same-host events ordered.

  /// Earliest scenario time `host` can start its next operation.
  [[nodiscard]] Nanos host_ready(HostId host) const { return ready_[host]; }

  /// Record that `host` was busy [start, start+cost): pushes its ready time
  /// forward and accounts the busy interval. Returns the completion time.
  Nanos charge_host(HostId host, Nanos start, Nanos cost) {
    const Nanos begin = start > ready_[host] ? start : ready_[host];
    ready_[host] = begin + cost;
    stats_.busy_ns += cost;
    return ready_[host];
  }

  /// Push `host`'s ready time to at least `until` without accounting busy
  /// time - the passive side of a transfer (a server whose NIC was occupied
  /// by a client-attributed operation).
  void hold_host(HostId host, Nanos until) {
    if (until > ready_[host]) ready_[host] = until;
  }

  /// The post mutex, exposed so the engine can attach contention stats
  /// (obs::emit_contention) in threaded runs.
  [[nodiscard]] sync::Mutex& post_mutex() { return post_mu_; }

  struct Stats {
    sync::Relaxed dispatched = 0;
    std::size_t peak_pending = 0;  // maintained under the post mutex
    sync::Relaxed busy_ns = 0;  ///< summed per-host busy time (vs. makespan)
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  static bool& tls_now_active() {
    thread_local bool active = false;
    return active;
  }
  static Nanos& tls_now() {
    thread_local Nanos t = 0;
    return t;
  }

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<Nanos> ready_;
  std::uint64_t next_seq_ = 0;
  std::atomic<Nanos> now_{0};
  HostId current_host_ = 0;
  sync::Mutex post_mu_;
  Stats stats_;
  Nanos tick_interval_ = 0;  // 0 = interval ticks disabled
  Nanos next_tick_ = 0;
  std::function<void(Nanos)> tick_;
};

}  // namespace vialock::scenario
