// scheduler.h - the event-driven multi-host scheduler.
//
// The benches before this subsystem drove clusters lock-step: every host
// executed its next operation in a fixed round-robin, so a run's virtual
// duration was the *sum* of every host's work on the one shared clock, and
// idle hosts still cost a visit per round. This scheduler replaces that with
// a classic discrete-event loop over scenario time:
//
//   * one binary heap of pending events ordered by (when, seq) - seq is a
//     global monotone counter, so the order is total and deterministic;
//   * each host advances only when it has runnable work: an idle host has no
//     events in the heap and costs nothing;
//   * executing an event runs real substrate operations against the
//     cluster's shared Clock (which acts as a cost meter); the measured
//     delta becomes the event's duration in scenario time, and per-host
//     ready times keep one host's operations from overlapping each other
//     while different hosts proceed concurrently.
//
// Scenario time is therefore a *makespan* across hosts, while the cluster
// clock still accumulates total simulated CPU/wire cost - both are reported.
// Determinism: given the same posted events (same spec + seed), the dispatch
// order, every measured cost, and all statistics are bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/clock.h"

namespace vialock::scenario {

using HostId = std::uint32_t;

class EventScheduler {
 public:
  /// An event's body. Runs substrate work; posts follow-up events.
  using Action = std::function<void()>;

  explicit EventScheduler(std::uint32_t hosts) : ready_(hosts, 0) {}

  /// Enqueue `fn` at scenario time `when` on behalf of `host`. Events that
  /// share a timestamp dispatch in post order (seq tie-break).
  void post(Nanos when, HostId host, Action fn) {
    heap_.push(Event{when, next_seq_++, host, std::move(fn)});
    if (heap_.size() > stats_.peak_pending) stats_.peak_pending = heap_.size();
  }

  /// Drain the heap. Returns the number of events dispatched.
  std::uint64_t run() {
    std::uint64_t dispatched = 0;
    while (!heap_.empty()) {
      // Move the action out before popping; pop invalidates the reference.
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      if (ev.when > now_) now_ = ev.when;
      current_host_ = ev.host;
      ev.fn();
      ++dispatched;
    }
    stats_.dispatched += dispatched;
    return dispatched;
  }

  [[nodiscard]] Nanos now() const { return now_; }
  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  // --- per-host bookkeeping ---------------------------------------------------
  /// Earliest scenario time `host` can start its next operation.
  [[nodiscard]] Nanos host_ready(HostId host) const { return ready_[host]; }

  /// Record that `host` was busy [start, start+cost): pushes its ready time
  /// forward and accounts the busy interval. Returns the completion time.
  Nanos charge_host(HostId host, Nanos start, Nanos cost) {
    const Nanos begin = start > ready_[host] ? start : ready_[host];
    ready_[host] = begin + cost;
    stats_.busy_ns += cost;
    return ready_[host];
  }

  /// Push `host`'s ready time to at least `until` without accounting busy
  /// time - the passive side of a transfer (a server whose NIC was occupied
  /// by a client-attributed operation).
  void hold_host(HostId host, Nanos until) {
    if (until > ready_[host]) ready_[host] = until;
  }

  struct Stats {
    std::uint64_t dispatched = 0;
    std::size_t peak_pending = 0;
    Nanos busy_ns = 0;  ///< summed per-host busy time (vs. makespan = now())
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Event {
    Nanos when = 0;
    std::uint64_t seq = 0;
    HostId host = 0;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<Nanos> ready_;
  std::uint64_t next_seq_ = 0;
  Nanos now_ = 0;
  HostId current_host_ = 0;
  Stats stats_;
};

}  // namespace vialock::scenario
