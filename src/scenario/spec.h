// spec.h - declarative cluster-scale workload specifications.
//
// A ScenarioSpec describes a whole cluster run in one small text file: how
// many simulated hosts, the tenant mix (pinmgr QoS classes and quotas), the
// traffic pattern (RPC fan-out, hot-key-skewed KV, parameter-server
// allreduce, streaming pipeline, collectives), registration-churn rates, and
// a fault schedule. The scenario engine (engine.h) compiles a spec onto the
// existing via::Cluster / msg / mp primitives and runs it on the
// event-driven multi-host scheduler (scheduler.h).
//
// The format is deliberately tiny - `key = value` lines, `#` comments - so
// specs stay reviewable in a PR diff and parse without any library:
//
//   # skewed-kv.spec
//   name     = skewed-kv
//   pattern  = skewed-kv
//   hosts    = 64
//   servers  = 8
//   seed     = 42
//   tenants_per_host = 2
//   ops_per_tenant   = 500
//   skew     = 1.1
//   fault    = wire drop p=0.001
//
// Same spec + same seed => byte-identical reports and trace exports
// (DESIGN.md section 12 states the determinism rules).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.h"
#include "util/clock.h"
#include "via/policy_factory.h"

namespace vialock::scenario {

/// The traffic shapes the engine knows how to compile.
enum class Pattern : std::uint8_t {
  RpcFanout,    ///< clients fan each request out to `fanout` servers
  SkewedKv,     ///< GET/PUT to key-addressed servers, Zipf-skewed keys
  PsAllreduce,  ///< workers push shards to a parameter server (mp::Comm)
  Pipeline,     ///< records stream host 0 -> 1 -> ... -> N-1
  Collectives,  ///< msg::Mesh barrier/broadcast/allreduce/alltoall rounds
  KvService,    ///< svc::KvServer/KvClient tier: pipelined, governed, zero-copy
};

[[nodiscard]] constexpr std::string_view to_string(Pattern p) {
  switch (p) {
    case Pattern::RpcFanout: return "rpc-fanout";
    case Pattern::SkewedKv: return "skewed-kv";
    case Pattern::PsAllreduce: return "ps-allreduce";
    case Pattern::Pipeline: return "pipeline";
    case Pattern::Collectives: return "collectives";
    case Pattern::KvService: return "kv-server";
  }
  return "?";
}

/// Online SLO watchdog rule, from a `slo = <metric> <op> <value> [window=K]`
/// line. `metric` is a metric reference the sampler resolves at each tick: a
/// plain snapshot name, or a histogram name suffixed .p50/.p95/.p99/.p999/
/// .count/.sum/.max ("svc.kv.op_ns.p99"). `op` (lt/le/gt/ge, validated at
/// parse time) states what the metric is *required* to satisfy against
/// `threshold`; the engine converts to obs::SloSpec and a violated rule
/// flight-dumps and fails the audit. `window` spaces repeat firings.
struct SloRule {
  std::string metric;
  std::string op = "le";
  std::uint64_t threshold = 0;
  std::uint64_t window = 1;
};

struct ScenarioSpec {
  std::string name = "unnamed";
  Pattern pattern = Pattern::SkewedKv;
  std::uint64_t seed = 1;
  std::uint32_t hosts = 8;
  /// Execution mode (DESIGN.md section 15): 1 runs the deterministic serial
  /// oracle; >1 arms every sync:: primitive at build time and drains the
  /// event heap with that many worker threads. The audit surface (ops, zero
  /// lost/corrupt payloads, residual pins/charges, self-check) is identical
  /// to the serial run of the same spec + seed; time-shaped scalars
  /// (makespan, busy, latency percentiles) may differ.
  std::uint32_t threads = 1;

  // --- per-host platform sizing -------------------------------------------------
  std::uint32_t host_frames = 1024;      ///< physical frames per simulated host
  std::uint32_t host_swap_slots = 2048;  ///< swap slots per host
  std::uint32_t tpt_entries = 2048;      ///< NIC TPT entries per host
  std::uint32_t nic_vis = 0;             ///< VI table size (0 = max(256, 2*hosts))
  via::PolicyKind policy = via::PolicyKind::Kiobuf;

  // --- tenant mix (pinmgr) ------------------------------------------------------
  std::uint32_t tenants_per_host = 1;
  std::uint32_t tenant_quota_pages = 512;    ///< per-tenant pin quota
  double guaranteed_fraction = 0.5;          ///< share of tenants Guaranteed
  bool governor = true;                      ///< broker pins through pinmgr
  std::uint32_t guaranteed_reserve = 0;      ///< ceiling pages reserved
  std::uint32_t lazy_dereg_batch = 0;        ///< pinmgr lazy batching depth

  // --- traffic ------------------------------------------------------------------
  std::uint32_t servers = 4;          ///< rpc/kv: hosts 0..servers-1 serve
  std::uint32_t fanout = 2;           ///< rpc: servers hit per request
  std::uint32_t request_bytes = 512;  ///< rpc request / kv GET request
  std::uint32_t response_bytes = 512; ///< rpc response / kv PUT ack
  std::uint32_t value_bytes = 512;    ///< kv value payload
  double put_fraction = 0.25;         ///< kv: PUT share of ops
  std::uint32_t keys = 4096;          ///< kv keyspace size
  double skew = 1.0;                  ///< kv Zipf exponent (0 = uniform)
  std::uint32_t ops_per_tenant = 64;  ///< rpc/kv ops, pipeline records/source
  std::uint32_t rounds = 4;           ///< ps-allreduce / collectives rounds

  // --- kv-server (svc tier) ----------------------------------------------------
  std::uint32_t connections_per_client = 4;  ///< conns each client host holds
  std::uint32_t pipeline_window = 4;   ///< in-flight requests per connection
  std::uint32_t completion_batch = 32; ///< CQ harvest / doorbell batch depth
  std::uint32_t large_value_bytes = 4096;  ///< rendezvous-path value size
  double large_fraction = 0.25;        ///< share of ops touching large values
  std::uint32_t conn_churn_per_client = 0;  ///< close+reconnect cycles per client
  double churn_abandon_fraction = 0.5; ///< share of churn cycles that are abrupt

  std::uint32_t shard_bytes = 4096;   ///< ps: gradient shard per worker
  std::uint32_t record_bytes = 4096;  ///< pipeline: record size
  Nanos think_ns = 10'000;            ///< per-actor inter-arrival gap

  // --- collectives (E12 compatibility) -----------------------------------------
  std::uint32_t payload_bytes = 64 * 1024;  ///< broadcast payload
  std::uint32_t allreduce_count = 256;      ///< u64 elements
  std::uint32_t alltoall_block = 8 * 1024;  ///< per-peer block
  std::uint64_t channel_heap_bytes = 256 * 1024;  ///< per-channel user heap
  bool mesh_eager_channels = false;  ///< pre-build the all-pairs mesh (E12)

  // --- registration churn -------------------------------------------------------
  std::uint32_t churn_regs_per_tenant = 0;  ///< registrations issued per tenant
  std::uint32_t churn_bytes = 64 * 1024;    ///< max churn registration size
  std::uint32_t churn_hold = 4;             ///< live registrations held

  // --- transport ---------------------------------------------------------------
  bool reliable = false;  ///< run channels in reliable-delivery mode

  // --- fault schedule -----------------------------------------------------------
  /// Parsed from `fault = <site> <action> [p=..] [after=..] [max=..]
  /// [delay=..] [mask=..] [before=..] [from=..]` lines; the engine arms one
  /// FaultEngine (seeded with `seed`) across the whole cluster when rules
  /// are present.
  std::vector<fault::FaultRule> fault_rules;

  // --- telemetry (obs::Sampler, DESIGN.md section 16) --------------------------
  /// Serial-mode sampling period in virtual ns; 0 = no interval override
  /// (the engine still samples - at its 1ms default - whenever SLO rules
  /// are present or a timeline export was requested). Threaded runs sample
  /// once per scheduler epoch regardless.
  Nanos sample_interval = 0;
  /// Watchdog rules evaluated at every sample tick.
  std::vector<SloRule> slo_rules;

  /// Apply one `key = value` override (what the parser does per line; also
  /// how drivers specialise a bundled spec, e.g. E12 sweeping `hosts`).
  /// Returns an error message, or "" on success.
  [[nodiscard]] std::string apply(std::string_view key, std::string_view value);

  /// Total client-issued operations this spec will attempt (transfers plus
  /// churn registrations), for reports and sanity checks.
  [[nodiscard]] std::uint64_t planned_ops() const;

  /// Spec-level consistency check ("" = valid).
  [[nodiscard]] std::string validate() const;
};

/// Parse a whole spec text. On failure `error` names the offending line.
struct ParseResult {
  ScenarioSpec spec;
  std::string error;  ///< empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

[[nodiscard]] ParseResult parse_spec(std::string_view text);
[[nodiscard]] ParseResult load_spec_file(const std::string& path);

/// One-line summary of a spec (`--list` output of scenario_runner).
[[nodiscard]] std::string summary(const ScenarioSpec& spec);

}  // namespace vialock::scenario
