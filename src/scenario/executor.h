// executor.h - execution modes for the event scheduler (DESIGN.md sec 15).
//
// An Executor owns *how* the event heap is drained; the scheduler owns
// *what* runs. SerialExecutor is the deterministic oracle: it delegates to
// EventScheduler::run(), the byte-identical single-threaded loop every CI
// determinism gate replays. ThreadedExecutor runs one worker per hardware
// lane and drains the heap in epochs:
//
//   1. pop every pending event (already (when, seq)-sorted),
//   2. partition into per-host lanes, preserving order - all of one host's
//      events stay on one lane, so per-host state needs no locking,
//   3. workers claim whole lanes from a shared atomic cursor (epoch-bounded
//      work stealing: a fast worker takes the next unclaimed lane),
//   4. barrier; events posted during the epoch form the next epoch.
//
// Causality needs no cross-worker ordering: an event only depends on events
// that (transitively) posted it, and a posted event always lands in a later
// epoch. Cross-host mutual exclusion within an epoch is the engine's
// HostGuard discipline, not the executor's problem.
//
// The audit surface (ops served, zero lost/corrupt, residual pins/charge,
// self_check) is identical to a serial run of the same spec + seed - the
// differential suite enforces it. Scenario-time scalars (makespan, busy
// time, latency percentiles) may differ: epochs interleave host timelines
// differently than the serial total order.
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/scheduler.h"
#include "sync/relaxed.h"

namespace vialock::scenario {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Worker count (1 for the serial oracle).
  [[nodiscard]] virtual std::uint32_t threads() const = 0;

  /// Drain the scheduler to empty. Returns events dispatched.
  virtual std::uint64_t run(EventScheduler& sched) = 0;

  /// Virtual ns charged by worker `i` so far (its Clock::thread_charged(),
  /// republished at each epoch barrier). 0 when the executor does not
  /// track per-worker cost - the serial oracle charges everything on the
  /// driver thread, which the engine already reports as total cost.
  [[nodiscard]] virtual std::uint64_t worker_cpu_ns(std::uint32_t) const {
    return 0;
  }
};

/// The deterministic single-threaded oracle (EventScheduler::run()).
class SerialExecutor final : public Executor {
 public:
  [[nodiscard]] std::uint32_t threads() const override { return 1; }
  std::uint64_t run(EventScheduler& sched) override { return sched.run(); }
};

/// Epoch-draining worker pool; see file comment. Workers are labeled with
/// simulated NUMA domains (round-robin over two sockets) so the CNA locks'
/// domain-preference path runs even on single-socket machines.
class ThreadedExecutor final : public Executor {
 public:
  explicit ThreadedExecutor(std::uint32_t threads)
      : threads_(threads < 1 ? 1 : threads), worker_cpu_(threads_) {}

  [[nodiscard]] std::uint32_t threads() const override { return threads_; }
  std::uint64_t run(EventScheduler& sched) override;

  /// Epoch-grained (workers republish at each barrier), so a mid-run read
  /// from the driver thread's tick hook is a consistent recent value.
  [[nodiscard]] std::uint64_t worker_cpu_ns(std::uint32_t i) const override {
    return i < worker_cpu_.size() ? worker_cpu_[i].load() : 0;
  }

 private:
  std::uint32_t threads_;
  std::vector<sync::Relaxed> worker_cpu_;
};

}  // namespace vialock::scenario
