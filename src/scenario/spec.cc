#include "scenario/spec.h"

#include <array>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace vialock::scenario {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

bool parse_u32(std::string_view v, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (v.empty()) return false;
  for (const char c : v) {
    if (c < '0' || c > '9') return false;
    wide = wide * 10 + static_cast<std::uint64_t>(c - '0');
    if (wide > UINT32_MAX) return false;
  }
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool parse_u64(std::string_view v, std::uint64_t& out) {
  if (v.empty()) return false;
  out = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

bool parse_f64(std::string_view v, double& out) {
  const std::string s(v);
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end && *end == '\0' && !s.empty();
}

bool parse_bool(std::string_view v, bool& out) {
  if (v == "on" || v == "true" || v == "yes" || v == "1") return out = true, true;
  if (v == "off" || v == "false" || v == "no" || v == "0")
    return out = false, true;
  return false;
}

/// Sizes accept a k/m suffix (KiB/MiB): `64k`, `2m`, `4096`.
bool parse_bytes(std::string_view v, std::uint64_t& out) {
  std::uint64_t mult = 1;
  if (!v.empty() && (v.back() == 'k' || v.back() == 'K')) {
    mult = 1024;
    v.remove_suffix(1);
  } else if (!v.empty() && (v.back() == 'm' || v.back() == 'M')) {
    mult = 1024 * 1024;
    v.remove_suffix(1);
  }
  if (!parse_u64(v, out)) return false;
  out *= mult;
  return true;
}

bool parse_bytes32(std::string_view v, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!parse_bytes(v, wide) || wide > UINT32_MAX) return false;
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool parse_pattern(std::string_view v, Pattern& out) {
  constexpr std::array<Pattern, 6> all = {
      Pattern::RpcFanout, Pattern::SkewedKv,  Pattern::PsAllreduce,
      Pattern::Pipeline,  Pattern::Collectives, Pattern::KvService};
  for (const Pattern p : all) {
    if (v == to_string(p)) {
      out = p;
      return true;
    }
  }
  // Underscore spelling tolerated (rpc_fanout == rpc-fanout).
  std::string dashed(v);
  for (char& c : dashed)
    if (c == '_') c = '-';
  for (const Pattern p : all) {
    if (dashed == to_string(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

bool parse_policy(std::string_view v, via::PolicyKind& out) {
  struct Name {
    std::string_view name;
    via::PolicyKind kind;
  };
  constexpr std::array<Name, 5> names = {
      Name{"refcount", via::PolicyKind::Refcount},
      Name{"pageflag", via::PolicyKind::PageFlag},
      Name{"mlock", via::PolicyKind::Mlock},
      Name{"mlock-track", via::PolicyKind::MlockTracked},
      Name{"kiobuf", via::PolicyKind::Kiobuf}};
  for (const auto& n : names) {
    if (v == n.name) {
      out = n.kind;
      return true;
    }
  }
  return false;
}

bool parse_site(std::string_view v, fault::FaultSite& out) {
  for (std::size_t i = 0; i < fault::kNumFaultSites; ++i) {
    const auto s = static_cast<fault::FaultSite>(i);
    if (v == fault::to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

bool parse_action(std::string_view v, fault::FaultAction& out) {
  constexpr std::array<fault::FaultAction, 4> all = {
      fault::FaultAction::Fail, fault::FaultAction::Delay,
      fault::FaultAction::Corrupt, fault::FaultAction::Drop};
  for (const fault::FaultAction a : all) {
    if (v == fault::to_string(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

/// `fault = <site> <action> [p=0.01] [after=100] [max=5] [delay=50000]
///  [mask=255] [before=ns] [from=ns]`
std::string parse_fault_rule(std::string_view value, fault::FaultRule& rule) {
  std::istringstream in{std::string(value)};
  std::string site, action;
  in >> site >> action;
  if (!parse_site(site, rule.site)) return "unknown fault site '" + site + "'";
  if (!parse_action(action, rule.action))
    return "unknown fault action '" + action + "'";
  std::string opt;
  while (in >> opt) {
    const auto eq = opt.find('=');
    if (eq == std::string::npos) return "malformed fault option '" + opt + "'";
    const std::string_view k = std::string_view(opt).substr(0, eq);
    const std::string_view v = std::string_view(opt).substr(eq + 1);
    if (k == "p") {
      if (!parse_f64(v, rule.probability)) return "bad fault p= value";
    } else if (k == "after") {
      if (!parse_u64(v, rule.after_events)) return "bad fault after= value";
    } else if (k == "max") {
      if (!parse_u64(v, rule.max_triggers)) return "bad fault max= value";
    } else if (k == "delay") {
      if (!parse_u64(v, rule.delay)) return "bad fault delay= value";
    } else if (k == "mask") {
      if (!parse_u64(v, rule.corrupt_mask)) return "bad fault mask= value";
    } else if (k == "from") {
      if (!parse_u64(v, rule.not_before)) return "bad fault from= value";
    } else if (k == "before") {
      if (!parse_u64(v, rule.not_after)) return "bad fault before= value";
    } else {
      return "unknown fault option '" + std::string(k) + "'";
    }
  }
  return "";
}

/// `slo = <metric> <op> <value> [window=4]`
std::string parse_slo_rule(std::string_view value, SloRule& rule) {
  std::istringstream in{std::string(value)};
  std::string metric, op, threshold;
  in >> metric >> op >> threshold;
  if (metric.empty() || op.empty() || threshold.empty())
    return "slo rule needs '<metric> <op> <value>'";
  if (op != "lt" && op != "le" && op != "gt" && op != "ge")
    return "unknown slo operator '" + op + "'";
  if (!parse_u64(threshold, rule.threshold))
    return "bad slo threshold value '" + threshold + "'";
  rule.metric = metric;
  rule.op = op;
  std::string opt;
  while (in >> opt) {
    const auto eq = opt.find('=');
    if (eq == std::string::npos) return "malformed slo option '" + opt + "'";
    const std::string_view k = std::string_view(opt).substr(0, eq);
    const std::string_view v = std::string_view(opt).substr(eq + 1);
    if (k == "window") {
      if (!parse_u64(v, rule.window) || rule.window == 0)
        return "slo window must be >= 1";
    } else {
      return "unknown slo option '" + std::string(k) + "'";
    }
  }
  return "";
}

}  // namespace

std::string ScenarioSpec::apply(std::string_view key, std::string_view value) {
  const auto bad = [&](std::string_view what) {
    return "bad " + std::string(what) + " value '" + std::string(value) + "'";
  };
  if (key == "name") {
    name = std::string(value);
  } else if (key == "pattern") {
    if (!parse_pattern(value, pattern)) return bad("pattern");
  } else if (key == "seed") {
    if (!parse_u64(value, seed)) return bad("seed");
  } else if (key == "hosts") {
    if (!parse_u32(value, hosts)) return bad("hosts");
  } else if (key == "threads") {
    if (!parse_u32(value, threads)) return bad("threads");
  } else if (key == "host_frames") {
    if (!parse_u32(value, host_frames)) return bad("host_frames");
  } else if (key == "host_swap_slots") {
    if (!parse_u32(value, host_swap_slots)) return bad("host_swap_slots");
  } else if (key == "tpt_entries") {
    if (!parse_u32(value, tpt_entries)) return bad("tpt_entries");
  } else if (key == "nic_vis") {
    if (!parse_u32(value, nic_vis)) return bad("nic_vis");
  } else if (key == "policy") {
    if (!parse_policy(value, policy)) return bad("policy");
  } else if (key == "tenants_per_host") {
    if (!parse_u32(value, tenants_per_host)) return bad("tenants_per_host");
  } else if (key == "tenant_quota_pages") {
    if (!parse_u32(value, tenant_quota_pages)) return bad("tenant_quota_pages");
  } else if (key == "guaranteed_fraction") {
    if (!parse_f64(value, guaranteed_fraction)) return bad("guaranteed_fraction");
  } else if (key == "governor") {
    if (!parse_bool(value, governor)) return bad("governor");
  } else if (key == "guaranteed_reserve") {
    if (!parse_u32(value, guaranteed_reserve)) return bad("guaranteed_reserve");
  } else if (key == "lazy_dereg_batch") {
    if (!parse_u32(value, lazy_dereg_batch)) return bad("lazy_dereg_batch");
  } else if (key == "servers") {
    if (!parse_u32(value, servers)) return bad("servers");
  } else if (key == "fanout") {
    if (!parse_u32(value, fanout)) return bad("fanout");
  } else if (key == "request_bytes") {
    if (!parse_bytes32(value, request_bytes)) return bad("request_bytes");
  } else if (key == "response_bytes") {
    if (!parse_bytes32(value, response_bytes)) return bad("response_bytes");
  } else if (key == "value_bytes") {
    if (!parse_bytes32(value, value_bytes)) return bad("value_bytes");
  } else if (key == "put_fraction") {
    if (!parse_f64(value, put_fraction)) return bad("put_fraction");
  } else if (key == "keys") {
    if (!parse_u32(value, keys)) return bad("keys");
  } else if (key == "skew") {
    if (!parse_f64(value, skew)) return bad("skew");
  } else if (key == "ops_per_tenant") {
    if (!parse_u32(value, ops_per_tenant)) return bad("ops_per_tenant");
  } else if (key == "rounds") {
    if (!parse_u32(value, rounds)) return bad("rounds");
  } else if (key == "connections_per_client") {
    if (!parse_u32(value, connections_per_client))
      return bad("connections_per_client");
  } else if (key == "pipeline_window") {
    if (!parse_u32(value, pipeline_window)) return bad("pipeline_window");
  } else if (key == "completion_batch") {
    if (!parse_u32(value, completion_batch)) return bad("completion_batch");
  } else if (key == "large_value_bytes") {
    if (!parse_bytes32(value, large_value_bytes))
      return bad("large_value_bytes");
  } else if (key == "large_fraction") {
    if (!parse_f64(value, large_fraction)) return bad("large_fraction");
  } else if (key == "conn_churn_per_client") {
    if (!parse_u32(value, conn_churn_per_client))
      return bad("conn_churn_per_client");
  } else if (key == "churn_abandon_fraction") {
    if (!parse_f64(value, churn_abandon_fraction))
      return bad("churn_abandon_fraction");
  } else if (key == "shard_bytes") {
    if (!parse_bytes32(value, shard_bytes)) return bad("shard_bytes");
  } else if (key == "record_bytes") {
    if (!parse_bytes32(value, record_bytes)) return bad("record_bytes");
  } else if (key == "think_ns") {
    if (!parse_u64(value, think_ns)) return bad("think_ns");
  } else if (key == "payload_bytes") {
    if (!parse_bytes32(value, payload_bytes)) return bad("payload_bytes");
  } else if (key == "allreduce_count") {
    if (!parse_u32(value, allreduce_count)) return bad("allreduce_count");
  } else if (key == "alltoall_block") {
    if (!parse_bytes32(value, alltoall_block)) return bad("alltoall_block");
  } else if (key == "channel_heap_bytes") {
    if (!parse_bytes(value, channel_heap_bytes)) return bad("channel_heap_bytes");
  } else if (key == "mesh_eager_channels") {
    if (!parse_bool(value, mesh_eager_channels))
      return bad("mesh_eager_channels");
  } else if (key == "churn_regs_per_tenant") {
    if (!parse_u32(value, churn_regs_per_tenant))
      return bad("churn_regs_per_tenant");
  } else if (key == "churn_bytes") {
    if (!parse_bytes32(value, churn_bytes)) return bad("churn_bytes");
  } else if (key == "churn_hold") {
    if (!parse_u32(value, churn_hold)) return bad("churn_hold");
  } else if (key == "reliable") {
    if (!parse_bool(value, reliable)) return bad("reliable");
  } else if (key == "fault") {
    fault::FaultRule rule;
    if (std::string err = parse_fault_rule(value, rule); !err.empty())
      return err;
    fault_rules.push_back(rule);
  } else if (key == "sample_interval") {
    if (!parse_u64(value, sample_interval)) return bad("sample_interval");
  } else if (key == "slo") {
    SloRule rule;
    if (std::string err = parse_slo_rule(value, rule); !err.empty())
      return err;
    slo_rules.push_back(std::move(rule));
  } else {
    return "unknown key '" + std::string(key) + "'";
  }
  return "";
}

std::uint64_t ScenarioSpec::planned_ops() const {
  const std::uint64_t tenants =
      static_cast<std::uint64_t>(hosts) * tenants_per_host;
  const std::uint64_t churn = tenants * churn_regs_per_tenant;
  switch (pattern) {
    case Pattern::RpcFanout: {
      const std::uint64_t clients =
          hosts > servers ? (static_cast<std::uint64_t>(hosts) - servers) *
                                tenants_per_host
                          : 0;
      // Each RPC is `fanout` request+response transfer pairs.
      return clients * ops_per_tenant * fanout * 2 + churn;
    }
    case Pattern::SkewedKv: {
      const std::uint64_t clients =
          hosts > servers ? (static_cast<std::uint64_t>(hosts) - servers) *
                                tenants_per_host
                          : 0;
      return clients * ops_per_tenant * 2 + churn;  // request + response
    }
    case Pattern::PsAllreduce:
      // Push + broadcast leg per worker per round.
      return 2ULL * (hosts > 1 ? hosts - 1 : 0) * rounds + churn;
    case Pattern::Pipeline:
      // Each record crosses hosts-1 hops.
      return static_cast<std::uint64_t>(tenants_per_host) * ops_per_tenant *
                 (hosts > 1 ? hosts - 1 : 0) +
             churn;
    case Pattern::Collectives:
      return rounds + churn;  // one event per collective round
    case Pattern::KvService: {
      const std::uint64_t chosts =
          hosts > servers ? static_cast<std::uint64_t>(hosts) - servers : 0;
      // One client per host; ops_per_tenant ops per connection on average.
      return chosts * connections_per_client * ops_per_tenant + churn;
    }
  }
  return churn;
}

std::string ScenarioSpec::validate() const {
  if (hosts < 2) return "hosts must be >= 2";
  if (threads == 0) return "threads must be >= 1";
  if (threads > 256) return "threads must be <= 256";
  if (tenants_per_host < 1) return "tenants_per_host must be >= 1";
  if (pattern == Pattern::RpcFanout || pattern == Pattern::SkewedKv ||
      pattern == Pattern::KvService) {
    if (servers == 0) return "servers must be >= 1";
    if (servers >= hosts) return "servers must leave at least one client host";
  }
  if (pattern == Pattern::RpcFanout && fanout == 0)
    return "fanout must be >= 1";
  if (pattern == Pattern::RpcFanout && fanout > servers)
    return "fanout must be <= servers";
  if ((pattern == Pattern::SkewedKv || pattern == Pattern::KvService) &&
      keys == 0)
    return "keys must be >= 1";
  if (pattern == Pattern::KvService) {
    if (connections_per_client == 0) return "connections_per_client must be >= 1";
    if (pipeline_window == 0) return "pipeline_window must be >= 1";
    if (completion_batch == 0) return "completion_batch must be >= 1";
    if (value_bytes == 0) return "value_bytes must be >= 1";
    if (large_value_bytes < value_bytes)
      return "large_value_bytes must be >= value_bytes";
    if (large_fraction < 0.0 || large_fraction > 1.0)
      return "large_fraction must be in [0, 1]";
    if (churn_abandon_fraction < 0.0 || churn_abandon_fraction > 1.0)
      return "churn_abandon_fraction must be in [0, 1]";
  }
  if (guaranteed_fraction < 0.0 || guaranteed_fraction > 1.0)
    return "guaranteed_fraction must be in [0, 1]";
  if (put_fraction < 0.0 || put_fraction > 1.0)
    return "put_fraction must be in [0, 1]";
  if (churn_regs_per_tenant > 0 && churn_hold == 0)
    return "churn_hold must be >= 1 when churn is enabled";
  if (churn_bytes < simkern::kPageSize && churn_regs_per_tenant > 0)
    return "churn_bytes must be at least one page";
  return "";
}

ParseResult parse_spec(std::string_view text) {
  ParseResult result;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      result.error = "line " + std::to_string(line_no) + ": expected key = value";
      return result;
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (std::string err = result.spec.apply(key, value); !err.empty()) {
      result.error = "line " + std::to_string(line_no) + ": " + err;
      return result;
    }
  }
  if (std::string err = result.spec.validate(); !err.empty())
    result.error = err;
  return result;
}

ParseResult load_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult result;
    result.error = "cannot read spec file " + path;
    return result;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  ParseResult result = parse_spec(buf.str());
  if (!result.ok()) result.error = path + ": " + result.error;
  return result;
}

std::string summary(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << spec.name << ": " << to_string(spec.pattern) << ", " << spec.hosts
      << " hosts x " << spec.tenants_per_host << " tenants, ~"
      << spec.planned_ops() << " ops, seed " << spec.seed;
  if (spec.threads > 1) out << ", " << spec.threads << " threads";
  if (!spec.fault_rules.empty())
    out << ", " << spec.fault_rules.size() << " fault rule(s)";
  if (!spec.slo_rules.empty())
    out << ", " << spec.slo_rules.size() << " slo rule(s)";
  return out.str();
}

}  // namespace vialock::scenario
