// engine.h - compiles a ScenarioSpec onto the via/msg/mp substrate and runs
// it on the event-driven multi-host scheduler.
//
// build() materialises the cluster: per-host kernels/NICs sized from the
// spec, tenant tasks with pinmgr QoS classes and quotas, an optional fault
// engine armed cluster-wide, and (for the collective patterns) the mesh or
// communicator. run() seeds the traffic actors - RPC fan-out clients,
// Zipf-skewed KV clients, parameter-server rounds, pipeline sources,
// collective drivers, plus registration-churn actors - as events, drains
// the scheduler, then tears the whole cluster down and audits the
// invariants the paper cares about: nothing left pinned, quota accounting
// balanced, no kernel self-check violations, no lost or corrupted payloads.
//
// Determinism contract (DESIGN.md section 12): the same spec + seed yields
// the same event order, the same virtual-clock costs, and therefore a
// byte-identical report; wall-clock time never enters the report.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "msg/mesh.h"
#include "msg/transport.h"
#include "mp/comm.h"
#include "obs/sampler.h"
#include "scenario/executor.h"
#include "scenario/scheduler.h"
#include "scenario/spec.h"
#include "sync/sync.h"
#include "svc/kv_client.h"
#include "svc/kv_server.h"
#include "util/rng.h"
#include "util/table.h"
#include "via/node.h"
#include "via/vipl.h"

namespace vialock::scenario {

/// Everything the engine counts while a scenario runs. All values derive
/// from the virtual clock and seeded RNG streams - never from wall time.
/// Relaxed counters: threaded events on disjoint host sets bump these
/// concurrently; the totals are exact either way (serial no-op cost).
struct ScenarioCounters {
  sync::Relaxed transfers_attempted = 0;
  sync::Relaxed transfers_ok = 0;
  sync::Relaxed transfers_failed = 0;
  sync::Relaxed bytes_moved = 0;         ///< payload bytes through channels/comm
  sync::Relaxed registrations_ok = 0;    ///< churn-actor registrations admitted
  sync::Relaxed registrations_failed = 0;///< churn-actor registrations rejected
  sync::Relaxed deregistrations = 0;     ///< churn-actor deregistrations
  sync::Relaxed rpcs = 0;
  sync::Relaxed kv_gets = 0;
  sync::Relaxed kv_puts = 0;
  sync::Relaxed records_delivered = 0;
  sync::Relaxed allreduce_rounds = 0;
  sync::Relaxed verify_ok = 0;
  sync::Relaxed verify_failed = 0;       ///< payload markers that came back wrong
  sync::Relaxed channels_created = 0;
};

/// Roll-up of the svc tier's own accounting for the kv-server pattern,
/// aggregated across every KvServer/KvClient just before teardown destroys
/// them. Deliberately NOT part of report_json (that byte surface is frozen by
/// the E23 determinism gate); the E24 bench carries these through its own
/// JSON report instead.
struct KvServiceStats {
  // Server side (summed over servers).
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_shed = 0;
  std::uint64_t conns_closed = 0;
  std::uint64_t conns_abandoned = 0;
  std::uint64_t admission_rejected = 0;
  std::uint64_t requests = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t not_found = 0;
  std::uint64_t corrupt_payloads = 0;
  std::uint64_t arena_full = 0;
  std::uint64_t inline_bytes = 0;
  std::uint64_t eager_copies = 0;
  std::uint64_t rendezvous_ops = 0;
  std::uint64_t rendezvous_bytes = 0;
  std::uint64_t rendezvous_failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_completions = 0;
  std::uint64_t batched_replies = 0;
  std::uint64_t requests_dropped = 0;
  std::uint64_t send_errors = 0;
  // Client side (summed over client hosts).
  std::uint64_t client_requests_lost = 0;
  std::uint64_t client_data_corrupt = 0;
  std::uint64_t client_stale_completions = 0;
  std::uint64_t client_inline_bytes = 0;
  std::uint64_t client_rendezvous_bytes = 0;
  std::uint64_t client_doorbell_flushes = 0;
  std::uint64_t reconnect_failed = 0;
  std::uint64_t peak_open_conns = 0;
  // Client-visible operation latency (virtual ns, log2-bucket upper bounds).
  Nanos p50_ns = 0;
  Nanos p95_ns = 0;
  Nanos p99_ns = 0;
  Nanos p999_ns = 0;

  bool operator==(const KvServiceStats&) const = default;
};

struct ScenarioReport {
  ScenarioCounters counters;

  // Scheduler view.
  std::uint64_t events_dispatched = 0;
  std::uint64_t peak_pending = 0;
  Nanos makespan_ns = 0;   ///< scenario time when the heap drained
  Nanos busy_ns = 0;       ///< summed per-host busy intervals
  Nanos cpu_total_ns = 0;  ///< cluster clock at the end (total simulated cost)

  // Substrate roll-ups (summed across hosts).
  std::uint64_t agent_registrations = 0;  ///< every VipRegisterMem that succeeded
  std::uint64_t agent_deregistrations = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t lock_failures = 0;
  std::uint64_t tpt_full = 0;
  std::uint64_t governor_admitted = 0;
  std::uint64_t governor_rejected = 0;
  std::uint64_t faults_injected = 0;

  // Latency of client-visible operations (log2 buckets over virtual ns).
  Nanos latency_p50_ns = 0;
  Nanos latency_p99_ns = 0;

  // Collectives pattern only (E12 compatibility scalars).
  Nanos barrier_ns = 0;
  Nanos broadcast_ns = 0;
  std::uint64_t bcast_msgs = 0;
  Nanos allreduce_ns = 0;
  Nanos alltoall_ns = 0;

  /// ISSUE acceptance scalar: churn registrations + completed transfers.
  [[nodiscard]] std::uint64_t registrations_plus_transfers() const {
    return agent_registrations + counters.transfers_ok;
  }

  // Invariant audit (filled by run() after teardown).
  bool invariants_ok = false;
  std::vector<std::string> violations;

  /// Per-pattern breakdown (KV: per-server load; pipeline: per-hop; ...).
  Table breakdown{{"-"}};
};

/// Canonical JSON rendering of a finished run: spec identity + every report
/// scalar, keys in a fixed order. This is the byte-identity surface the
/// determinism tests and the E23 CI gate compare - same spec + seed must
/// reproduce this string exactly.
[[nodiscard]] std::string report_json(const ScenarioSpec& spec,
                                      const ScenarioReport& report);

/// Compiles and runs one ScenarioSpec. Single-shot: build() then run().
class ScenarioEngine {
 public:
  explicit ScenarioEngine(ScenarioSpec spec);
  ~ScenarioEngine();

  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  /// Materialise the cluster, tenants, governors, faults, mesh/comm. The
  /// spec's `threads` decides the execution mode: 1 builds everything with
  /// serial (no-op) locks, >1 arms every sync:: primitive in the tree.
  [[nodiscard]] KStatus build();
  /// Seed actors, drain the scheduler, tear down, audit. build() first.
  /// Picks the executor from the spec: SerialExecutor (threads = 1, the
  /// deterministic oracle) or ThreadedExecutor (threads > 1).
  [[nodiscard]] KStatus run();
  /// Same, draining through a caller-supplied executor. A multi-threaded
  /// executor requires a spec built with threads > 1 (the locks it needs
  /// were armed at build() time); mismatches return Inval.
  [[nodiscard]] KStatus run(Executor& exec);

  [[nodiscard]] const ScenarioReport& report() const { return report_; }
  /// kv-server pattern only: the svc tier's aggregated accounting.
  [[nodiscard]] const KvServiceStats& kv_service_stats() const {
    return kvsvc_stats_;
  }
  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] via::Cluster& cluster() { return *cluster_; }
  [[nodiscard]] EventScheduler& scheduler() { return *sched_; }

  // --- telemetry (obs::Sampler, DESIGN.md section 16) ------------------------
  /// Force run() to create the sampler even when the spec sets no
  /// sample_interval and no SLO rules (scenario_runner --timeline). Call
  /// before run().
  void enable_timeline() { timeline_requested_ = true; }
  /// Metric references to render as chrome-trace counter overlays
  /// (Sampler::chrome_counter_events). Call before run().
  void set_trace_metrics(std::vector<std::string> refs) {
    trace_metrics_ = std::move(refs);
  }
  /// The run's telemetry sampler, or nullptr when the run had none (no
  /// sample_interval, no SLO rules, enable_timeline() not called).
  [[nodiscard]] obs::Sampler* sampler() { return sampler_.get(); }
  [[nodiscard]] const obs::Sampler* sampler() const { return sampler_.get(); }
  /// Flight dumps captured during the run, (reason, document) in firing
  /// order. SLO rules arm host 0's recorder, so a watchdog that trips dumps
  /// *before* audit() flips the run's status.
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  flight_dumps() const {
    return flight_dumps_;
  }

 private:
  struct Tenant {
    simkern::Pid pid = simkern::kInvalidPid;
    pinmgr::QosTier tier = pinmgr::QosTier::BestEffort;
    std::unique_ptr<via::Vipl> vipl;   ///< churn registrations go through this
    simkern::VAddr churn_pool = 0;     ///< pre-mapped slab the churner slices
  };
  struct ClientActor {
    HostId host = 0;
    std::uint32_t tenant = 0;
    Rng rng{1};
    std::uint32_t remaining = 0;
  };
  struct ChurnActor {
    HostId host = 0;
    std::uint32_t tenant = 0;
    Rng rng{1};
    std::uint32_t remaining = 0;
    std::vector<via::MemHandle> held;
    std::uint32_t next_slot = 0;
  };
  /// One client connection of the kv-server pattern, with its fixed
  /// (server, tenant) placement so churn reconnects land in the same spot.
  struct KvConnRef {
    std::uint32_t conn = 0;
    std::uint32_t server = 0;
    std::uint32_t tenant = 0;
    bool open = false;
  };
  /// One kv-server client host: a KvClient plus its open-loop driver state.
  struct KvActor {
    HostId host = 0;
    std::uint32_t client = 0;  ///< index into kv_clients_
    Rng rng{1};
    std::uint32_t ops_remaining = 0;
    std::uint32_t churn_remaining = 0;
    std::uint32_t churn_every = 0;  ///< ops between churn cycles
    std::uint32_t ops_since_churn = 0;
    std::uint32_t next_conn = 0;  ///< round-robin connection cursor
    std::uint32_t stalls = 0;     ///< consecutive events with no usable conn
    std::vector<KvConnRef> conns;
    std::map<std::uint64_t, Nanos> issue_ns;  ///< req_id -> issue time
  };

  // --- build helpers ---------------------------------------------------------
  [[nodiscard]] KStatus build_hosts();
  [[nodiscard]] KStatus build_tenants();
  [[nodiscard]] KStatus build_transports();
  [[nodiscard]] KStatus build_kv_service();
  void build_zipf();

  // --- channels (lazy, per ordered host pair) --------------------------------
  [[nodiscard]] msg::Channel* channel(HostId from, HostId to);
  [[nodiscard]] msg::Channel::Config channel_config(HostId from, HostId to) const;
  [[nodiscard]] std::uint32_t max_payload() const;

  /// The execution mode every lock in the tree is constructed with.
  [[nodiscard]] sync::SyncPolicy sync_policy() const {
    return spec_.threads > 1 ? sync::SyncPolicy::threaded()
                             : sync::SyncPolicy::serial();
  }

  // --- actors ----------------------------------------------------------------
  void seed_actors();
  void run_rpc_op(std::size_t actor);
  void run_kv_op(std::size_t actor);
  void run_pipeline_emit(std::size_t actor);
  void run_pipeline_hop(HostId host, std::uint64_t slot_off,
                        std::uint64_t marker);
  void run_ps_begin_round();
  void run_ps_push(std::uint32_t worker);
  void run_ps_arrival(std::uint32_t worker);
  void run_ps_worker_check(std::uint32_t worker);
  void run_collectives_round();
  void run_churn_op(std::size_t actor);
  void run_kvsvc_op(std::size_t actor);
  /// One connection churn cycle (graceful close or mid-pipeline abandon,
  /// then reconnect) on the actor's next open connection.
  void run_kvsvc_churn(KvActor& a);
  /// Reconnect a closed KvConnRef; false when the server shed it again.
  [[nodiscard]] bool kvsvc_reconnect(KvActor& a, KvConnRef& ref);
  /// Account one harvested KvResult into the scenario counters.
  void kvsvc_account(const svc::KvResult& r, std::uint32_t server);

  /// One transfer attempt with failure accounting; true on success.
  bool do_transfer(msg::Channel* ch, std::uint32_t len,
                   std::uint64_t src_off = 0, std::uint64_t dst_off = 0);
  [[nodiscard]] std::uint32_t zipf_sample(Rng& rng) const;
  void pick_fanout_targets(Rng& rng, std::uint32_t* out, std::uint32_t k);
  void record_latency(Nanos ns);
  [[nodiscard]] Nanos percentile(double q) const;

  /// Lazily build the sampler (registries, extras, SLO rules, flight sink,
  /// scheduler tick) when the spec or the caller asked for telemetry.
  void setup_sampler(Executor& exec);

  // --- teardown / audit ------------------------------------------------------
  void teardown();
  void audit();
  void fill_report();
  void violation(std::string msg);

  [[nodiscard]] std::uint32_t first_client_host() const {
    return (spec_.pattern == Pattern::RpcFanout ||
            spec_.pattern == Pattern::SkewedKv ||
            spec_.pattern == Pattern::KvService)
               ? spec_.servers
               : 0;
  }

  ScenarioSpec spec_;
  bool built_ = false;
  bool ran_ = false;

  std::unique_ptr<via::Cluster> cluster_;
  std::unique_ptr<EventScheduler> sched_;
  std::vector<std::vector<Tenant>> tenants_;  ///< [host][tenant]
  std::unique_ptr<fault::FaultEngine> faults_;

  std::map<std::pair<HostId, HostId>, std::unique_ptr<msg::Channel>> channels_;
  /// Serializes lazy channel creation: two threaded events on disjoint host
  /// pairs may first-touch channels_ concurrently. Held across init() so a
  /// pair is built exactly once; never acquired with another engine lock
  /// held, so it orders cleanly before the per-node kernel locks.
  sync::Mutex channels_mu_;
  std::unique_ptr<msg::Mesh> mesh_;   ///< Collectives pattern
  std::unique_ptr<mp::Comm> comm_;    ///< PsAllreduce pattern

  std::vector<ClientActor> clients_;
  std::vector<ChurnActor> churners_;

  // kv-server (svc tier) pattern state.
  std::vector<std::unique_ptr<svc::KvServer>> kv_servers_;   ///< hosts 0..servers-1
  std::vector<std::unique_ptr<svc::KvClient>> kv_clients_;   ///< one per client host
  std::vector<KvActor> kv_actors_;
  KvServiceStats kvsvc_stats_;

  std::vector<double> zipf_cdf_;
  /// Persistent Fisher-Yates permutation shared by every RPC client (the
  /// serial byte surface depends on it staying shared); fanout_mu_ keeps
  /// threaded target draws atomic. Threaded target *choices* then depend on
  /// event interleaving, but the audit surface (op and transfer counts)
  /// does not - DESIGN.md section 15.
  std::vector<std::uint32_t> fanout_perm_;
  sync::Mutex fanout_mu_;

  // Parameter-server state.
  std::vector<mp::ReqId> ps_recv_reqs_;    ///< PS-side, indexed by worker-1
  std::vector<mp::ReqId> ps_result_reqs_;  ///< worker-side result receives
  std::uint32_t ps_round_ = 0;
  std::uint32_t ps_arrived_ = 0;
  std::uint64_t ps_expected_sum_ = 0;

  std::uint32_t collective_round_ = 0;
  std::uint64_t pipeline_seq_ = 0;
  /// Records that left the pipe: delivered at the tail, or died on a failed
  /// transfer. The emitter stalls while seq - retired would exceed the
  /// channel slot ring, so a slot is provably drained before it is restaged.
  sync::Relaxed pipeline_retired_ = 0;

  // Per-server KV/RPC load (breakdown table).
  std::vector<std::uint64_t> server_ops_;
  std::vector<std::uint64_t> server_bytes_;

  // Telemetry (DESIGN.md section 16).
  std::unique_ptr<obs::Sampler> sampler_;
  bool timeline_requested_ = false;
  std::vector<std::string> trace_metrics_;
  sync::ContentionStats post_mu_stats_;  ///< scheduler post-lock profile
  std::vector<std::pair<std::string, std::string>> flight_dumps_;

  ScenarioCounters counters_;
  std::array<sync::Relaxed, 64> lat_hist_{};
  sync::Relaxed lat_samples_ = 0;
  ScenarioReport report_;
};

}  // namespace vialock::scenario
