// executor.cc - the threaded epoch-draining worker pool.
#include "scenario/executor.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sync/gate.h"
#include "sync/policy.h"

namespace vialock::scenario {
namespace {

/// One epoch's events, partitioned into per-host lanes. Lanes preserve the
/// drained (when, seq) order, so a host's events run in the exact order the
/// serial oracle would run them relative to each other.
struct EpochLanes {
  std::vector<std::vector<EventScheduler::Event>> lanes;
  std::unordered_map<HostId, std::size_t> index;

  void partition(std::vector<EventScheduler::Event>& drained) {
    for (auto& lane : lanes) lane.clear();
    index.clear();
    std::size_t used = 0;
    for (auto& ev : drained) {
      auto [it, fresh] = index.try_emplace(ev.host, used);
      if (fresh) {
        if (used == lanes.size()) lanes.emplace_back();
        ++used;
      }
      lanes[it->second].push_back(std::move(ev));
    }
    lanes.resize(used);
  }
};

}  // namespace

std::uint64_t ThreadedExecutor::run(EventScheduler& sched) {
  sync::WorkerGate gate;
  EpochLanes lanes;
  std::atomic<std::size_t> next_lane{0};

  auto worker_body = [&](std::uint32_t worker_index) {
    // Simulated NUMA label: split the pool across two domains so CNA
    // same-domain handoff is a real code path in every threaded run.
    sync::set_thread_numa(static_cast<int>(worker_index % 2));
    std::uint64_t seen = 0;
    for (;;) {
      const std::uint64_t epoch = gate.await_epoch(seen);
      if (epoch == 0) return;
      seen = epoch;
      // Epoch-bounded work stealing: claim whole lanes until none remain.
      for (;;) {
        const std::size_t i = next_lane.fetch_add(1, std::memory_order_relaxed);
        if (i >= lanes.lanes.size()) break;
        for (auto& ev : lanes.lanes[i]) sched.dispatch(ev);
      }
      worker_cpu_[worker_index] = Clock::thread_charged();
      gate.done();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads_);
  for (std::uint32_t i = 0; i < threads_; ++i)
    pool.emplace_back(worker_body, i);

  std::uint64_t dispatched = 0;
  std::vector<EventScheduler::Event> drained;
  while (sched.drain_epoch(drained)) {
    dispatched += drained.size();
    lanes.partition(drained);
    next_lane.store(0, std::memory_order_relaxed);
    gate.start_epoch(threads_);
    gate.await_done();
    // One sample tick per epoch, from the driver thread while every worker
    // is parked at the barrier: race-free, and the tick count depends only
    // on posting causality - not the worker count - so it stays on the
    // differential audit surface.
    sched.epoch_tick();
  }
  gate.stop();
  for (auto& t : pool) t.join();
  return dispatched;
}

}  // namespace vialock::scenario
