#include "scenario/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>

#include "simkern/types.h"

namespace vialock::scenario {

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// Independent, well-mixed seed per actor: the same spec seed reproduces
/// every actor's stream; distinct actors never share one.
std::uint64_t actor_seed(std::uint64_t seed, std::uint64_t uid) {
  SplitMix64 sm(seed ^ (kGolden * (uid + 1)));
  return sm.next();
}

std::uint64_t page_round(std::uint64_t bytes) {
  return (bytes + simkern::kPageMask) & ~simkern::kPageMask;
}

/// Payload with a recognisable 8-byte marker up front (little-endian) and a
/// deterministic fill behind it - what the verify probes compare against.
std::vector<std::byte> marked_payload(std::uint32_t len, std::uint64_t marker) {
  std::vector<std::byte> buf(len, std::byte{static_cast<unsigned char>(marker)});
  for (std::uint32_t i = 0; i < 8 && i < len; ++i)
    buf[i] = std::byte{static_cast<unsigned char>(marker >> (8 * i))};
  return buf;
}

std::uint64_t read_marker(std::span<const std::byte> buf) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && i < buf.size(); ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<unsigned char>(buf[i]))
         << (8 * i);
  return v;
}

/// Scoped cross-host mutual exclusion for one event body: locks the Node
/// mutex of every host the event touches, always in ascending host-id order
/// so concurrent guard sets can never deadlock (DESIGN.md section 15). This
/// is the only cross-worker exclusion the threaded executor relies on -
/// within a lane (one host) events are already ordered. `armed` is the
/// engine's threaded flag; a serial run skips even the sort.
class HostGuard {
 public:
  HostGuard(via::Cluster& cluster, bool armed, std::vector<HostId> hosts)
      : cluster_(cluster) {
    if (!armed) return;
    hosts_ = std::move(hosts);
    std::sort(hosts_.begin(), hosts_.end());
    hosts_.erase(std::unique(hosts_.begin(), hosts_.end()), hosts_.end());
    for (const HostId h : hosts_) cluster_.node(h).mu().lock();
  }
  HostGuard(const HostGuard&) = delete;
  HostGuard& operator=(const HostGuard&) = delete;
  ~HostGuard() {
    for (auto it = hosts_.rbegin(); it != hosts_.rend(); ++it)
      cluster_.node(*it).mu().unlock();
  }

 private:
  via::Cluster& cluster_;
  std::vector<HostId> hosts_;
};

std::vector<HostId> all_hosts(std::uint32_t n) {
  std::vector<HostId> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

}  // namespace

ScenarioEngine::ScenarioEngine(ScenarioSpec spec) : spec_(std::move(spec)) {}
ScenarioEngine::~ScenarioEngine() = default;

// --- build --------------------------------------------------------------------

KStatus ScenarioEngine::build() {
  assert(!built_);
  if (!spec_.validate().empty()) return KStatus::Inval;

  cluster_ = std::make_unique<via::Cluster>();
  sched_ = std::make_unique<EventScheduler>(spec_.hosts, sync_policy());
  channels_mu_.set_policy(sync_policy());
  fanout_mu_.set_policy(sync_policy());

  if (const KStatus st = build_hosts(); !ok(st)) return st;
  if (const KStatus st = build_tenants(); !ok(st)) return st;

  if (!spec_.fault_rules.empty()) {
    fault::FaultPlan plan;
    plan.seed = spec_.seed;
    plan.rules = spec_.fault_rules;
    faults_ = std::make_unique<fault::FaultEngine>(plan, cluster_->clock());
    faults_->set_policy(sync_policy());
    cluster_->inject_faults(faults_.get());
  }

  if (const KStatus st = build_transports(); !ok(st)) return st;

  if (spec_.pattern == Pattern::SkewedKv ||
      spec_.pattern == Pattern::KvService)
    build_zipf();
  if (spec_.pattern == Pattern::RpcFanout) {
    fanout_perm_.resize(spec_.servers);
    for (std::uint32_t i = 0; i < spec_.servers; ++i) fanout_perm_[i] = i;
  }
  if (spec_.pattern == Pattern::RpcFanout ||
      spec_.pattern == Pattern::SkewedKv ||
      spec_.pattern == Pattern::KvService) {
    server_ops_.assign(spec_.servers, 0);
    server_bytes_.assign(spec_.servers, 0);
  }
  if (spec_.pattern == Pattern::KvService)
    if (const KStatus st = build_kv_service(); !ok(st)) return st;

  built_ = true;
  return KStatus::Ok;
}

KStatus ScenarioEngine::build_hosts() {
  via::NodeSpec ns;
  ns.kernel.frames = spec_.host_frames;
  ns.kernel.reserved_low =
      std::min<std::uint32_t>(64, std::max<std::uint32_t>(8, spec_.host_frames / 16));
  ns.kernel.swap_slots = spec_.host_swap_slots;
  ns.nic.tpt_entries = spec_.tpt_entries;
  // A host can terminate a VI per channel direction against every peer, so
  // the default 256-entry VI table starves past ~128 hosts.
  ns.nic.max_vis = spec_.nic_vis
                       ? spec_.nic_vis
                       : std::max<std::uint32_t>(256, 2 * spec_.hosts);
  ns.policy = spec_.policy;
  ns.sync = sync_policy();
  cluster_->add_nodes(ns, spec_.hosts);
  return KStatus::Ok;
}

KStatus ScenarioEngine::build_tenants() {
  tenants_.resize(spec_.hosts);
  const auto guaranteed = static_cast<std::uint32_t>(
      spec_.tenants_per_host * spec_.guaranteed_fraction + 0.5);
  for (HostId h = 0; h < spec_.hosts; ++h) {
    via::Node& node = cluster_->node(h);
    if (spec_.governor) {
      pinmgr::GovernorConfig gc;
      gc.default_quota = spec_.tenant_quota_pages;
      gc.guaranteed_reserve = spec_.guaranteed_reserve;
      gc.lazy_batch = spec_.lazy_dereg_batch;
      node.enable_governor(gc);
    }
    tenants_[h].reserve(spec_.tenants_per_host);
    for (std::uint32_t t = 0; t < spec_.tenants_per_host; ++t) {
      Tenant ten;
      ten.pid = node.kernel().create_task("h" + std::to_string(h) + ".t" +
                                          std::to_string(t));
      ten.tier = t < guaranteed ? pinmgr::QosTier::Guaranteed
                                : pinmgr::QosTier::BestEffort;
      if (node.governor())
        node.governor()->set_tenant(ten.pid, spec_.tenant_quota_pages, ten.tier);
      if (spec_.churn_regs_per_tenant > 0) {
        ten.vipl = std::make_unique<via::Vipl>(node.agent(), ten.pid);
        if (const KStatus st = ten.vipl->open(); !ok(st)) return st;
        const std::uint64_t slab =
            page_round(spec_.churn_bytes) * spec_.churn_hold;
        const auto addr = node.kernel().sys_mmap_anon(
            ten.pid, slab, simkern::VmFlag::Read | simkern::VmFlag::Write);
        if (!addr) return KStatus::NoMem;
        ten.churn_pool = *addr;
      }
      tenants_[h].push_back(std::move(ten));
    }
  }
  return KStatus::Ok;
}

KStatus ScenarioEngine::build_transports() {
  std::vector<via::NodeId> ids(spec_.hosts);
  for (std::uint32_t i = 0; i < spec_.hosts; ++i) ids[i] = i;

  switch (spec_.pattern) {
    case Pattern::Collectives: {
      msg::Mesh::Config mc;
      mc.channel.user_heap_bytes = spec_.channel_heap_bytes;
      mc.channel.reliability.enabled = spec_.reliable;
      mc.lazy_channels = !spec_.mesh_eager_channels;
      mesh_ = std::make_unique<msg::Mesh>(*cluster_, ids, mc);
      if (const KStatus st = mesh_->init(); !ok(st)) return st;
      if (spec_.governor) {
        // Mesh rank processes are infrastructure, not QoS subjects: give
        // them headroom so bounce-buffer pins never hit tenant quotas.
        for (std::uint32_t r = 0; r < spec_.hosts; ++r)
          cluster_->node(r).governor()->set_tenant(mesh_->rank_pid(r),
                                                   spec_.host_frames,
                                                   pinmgr::QosTier::Guaranteed);
      }
      break;
    }
    case Pattern::PsAllreduce: {
      mp::Comm::Config cc;
      cc.eager_credits = 2;
      cc.heap_bytes = std::max<std::uint64_t>(
          256 * 1024,
          (spec_.hosts + 2ULL) * page_round(spec_.shard_bytes));
      cc.lazy_links = true;
      comm_ = std::make_unique<mp::Comm>(*cluster_, ids, cc);
      if (const KStatus st = comm_->init(); !ok(st)) return st;
      if (spec_.governor) {
        for (std::uint32_t r = 0; r < spec_.hosts; ++r)
          cluster_->node(r).governor()->set_tenant(comm_->rank_pid(r),
                                                   spec_.host_frames,
                                                   pinmgr::QosTier::Guaranteed);
      }
      ps_result_reqs_.assign(spec_.hosts - 1, mp::kInvalidReq);
      break;
    }
    default:
      break;  // RPC/KV/pipeline channels come up lazily on first use
  }
  return KStatus::Ok;
}

KStatus ScenarioEngine::build_kv_service() {
  const std::uint32_t chosts = spec_.hosts - spec_.servers;
  const auto guaranteed = static_cast<std::uint32_t>(
      spec_.tenants_per_host * spec_.guaranteed_fraction + 0.5);

  svc::KvServerConfig sc;
  sc.slot_size = spec_.value_bytes + 128;
  sc.recv_credits = spec_.pipeline_window;
  sc.completion_batch = spec_.completion_batch;
  sc.inline_threshold = spec_.value_bytes;
  // Rendezvous PUTs always take fresh arena space (commit-after-verify), so
  // size the arena for the expected large-PUT volume plus one inline-sized
  // slab per key, with 2x headroom for skewed placement.
  const std::uint64_t total_ops = static_cast<std::uint64_t>(chosts) *
                                  spec_.connections_per_client *
                                  spec_.ops_per_tenant;
  const std::uint64_t large_puts = static_cast<std::uint64_t>(
      static_cast<double>(total_ops) * spec_.put_fraction *
          spec_.large_fraction +
      1.0);
  const std::uint64_t large_slab = (spec_.large_value_bytes + 63ULL) & ~63ULL;
  const std::uint64_t inline_slab = static_cast<std::uint64_t>(spec_.keys) *
                                    ((spec_.value_bytes + 63ULL) & ~63ULL);
  sc.arena_bytes = std::clamp<std::uint64_t>(
      2 * (large_puts / std::max(1u, spec_.servers) * large_slab +
           inline_slab),
      1ULL << 20, 256ULL << 20);

  kv_servers_.reserve(spec_.servers);
  for (std::uint32_t s = 0; s < spec_.servers; ++s) {
    auto srv = std::make_unique<svc::KvServer>(*cluster_, s, sc);
    if (const KStatus st = srv->init(); !ok(st)) return st;
    for (std::uint32_t t = 0; t < spec_.tenants_per_host; ++t) {
      svc::KvServer::TenantConfig tc;
      tc.name = "s" + std::to_string(s) + ".t" + std::to_string(t);
      tc.quota_pages = spec_.tenant_quota_pages;
      tc.tier = t < guaranteed ? pinmgr::QosTier::Guaranteed
                               : pinmgr::QosTier::BestEffort;
      (void)srv->add_tenant(tc);
    }
    kv_servers_.push_back(std::move(srv));
  }

  svc::KvClientConfig cc;
  cc.slot_size = sc.slot_size;
  cc.window = spec_.pipeline_window;
  cc.value_window_bytes = spec_.large_value_bytes;
  cc.inline_threshold = spec_.value_bytes;
  cc.completion_batch = spec_.completion_batch;

  kv_clients_.reserve(chosts);
  kv_actors_.reserve(chosts);
  for (std::uint32_t i = 0; i < chosts; ++i) {
    const HostId h = spec_.servers + i;
    auto cli = std::make_unique<svc::KvClient>(*cluster_, h,
                                               "kvc.h" + std::to_string(h), cc);
    if (const KStatus st = cli->open(); !ok(st)) return st;

    KvActor a;
    a.host = h;
    a.client = i;
    // Offset the uid space so kv actors never share a churner's rng stream.
    a.rng = Rng(actor_seed(spec_.seed, (1ULL << 32) + h));
    a.ops_remaining = spec_.connections_per_client * spec_.ops_per_tenant;
    a.churn_remaining = spec_.conn_churn_per_client;
    a.churn_every = a.churn_remaining
                        ? std::max<std::uint32_t>(
                              1, a.ops_remaining / (a.churn_remaining + 1))
                        : 0;
    a.conns.resize(spec_.connections_per_client);
    for (std::uint32_t c = 0; c < spec_.connections_per_client; ++c) {
      KvConnRef& ref = a.conns[c];
      ref.server = c % spec_.servers;
      ref.tenant = (c / spec_.servers) % spec_.tenants_per_host;
      std::uint32_t conn = 0;
      if (ok(cli->connect(*kv_servers_[ref.server], ref.tenant, conn))) {
        ref.conn = conn;
        ref.open = true;
      }  // shed slots stay closed; the actor retries during the run
    }
    kv_clients_.push_back(std::move(cli));
    kv_actors_.push_back(std::move(a));
  }

  std::uint64_t open = 0;
  for (const auto& s : kv_servers_) open += s->open_conns();
  kvsvc_stats_.peak_open_conns = open;
  return KStatus::Ok;
}

void ScenarioEngine::build_zipf() {
  zipf_cdf_.resize(spec_.keys);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < spec_.keys; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), spec_.skew);
    zipf_cdf_[i] = sum;
  }
  for (auto& v : zipf_cdf_) v /= sum;
}

// --- channels ----------------------------------------------------------------

std::uint32_t ScenarioEngine::max_payload() const {
  switch (spec_.pattern) {
    case Pattern::RpcFanout:
      return std::max(spec_.request_bytes, spec_.response_bytes);
    case Pattern::SkewedKv:
      return std::max({spec_.request_bytes, spec_.response_bytes,
                       spec_.value_bytes});
    case Pattern::Pipeline:
      return spec_.record_bytes;
    default:
      return 4096;
  }
}

msg::Channel::Config ScenarioEngine::channel_config(HostId from,
                                                    HostId to) const {
  msg::Channel::Config cfg;
  // Slots sized to the workload, not the 8 KB default: at 256 hosts a server
  // carries hundreds of channel sides and every slot page is pinned memory.
  // Only payloads below eager_threshold ever ride the eager path (anything
  // larger goes rendezvous), so size the ring for the largest eager-eligible
  // payload, not for max_payload().
  std::uint32_t eager_max = 0;
  for (const std::uint32_t p :
       {spec_.request_bytes, spec_.response_bytes, spec_.value_bytes,
        spec_.record_bytes, spec_.payload_bytes})
    if (p <= max_payload() && p < cfg.eager_threshold)
      eager_max = std::max(eager_max, p);
  cfg.eager_slot_size = ((eager_max + 128 + 511) / 512) * 512;
  cfg.eager_credits = 2;
  cfg.user_heap_bytes = spec_.channel_heap_bytes;
  const std::uint32_t t = spec_.tenants_per_host;
  cfg.sender_pid = tenants_[from][to % t].pid;
  cfg.receiver_pid = tenants_[to][from % t].pid;
  cfg.reliability.enabled = spec_.reliable;
  return cfg;
}

msg::Channel* ScenarioEngine::channel(HostId from, HostId to) {
  // Held across init(): the caller's HostGuard covers both endpoints, so the
  // kernel work is already exclusive; this lock only keeps the map (and the
  // build-exactly-once property) consistent across host pairs.
  sync::Guard g(channels_mu_);
  const auto key = std::make_pair(from, to);
  if (const auto it = channels_.find(key); it != channels_.end())
    return it->second.get();
  auto ch = std::make_unique<msg::Channel>(*cluster_, from, to,
                                           channel_config(from, to));
  if (!ok(ch->init())) return nullptr;  // next use retries from scratch
  // Stage the sender-side marker payload once; every transfer re-sends it,
  // so the receiver heap always ends up holding `from`'s marker.
  const std::uint64_t marker = kGolden * (from + 1) ^ spec_.seed;
  const auto buf = marked_payload(max_payload(), marker);
  (void)ch->stage(0, buf);
  ++counters_.channels_created;
  msg::Channel* ptr = ch.get();
  channels_.emplace(key, std::move(ch));
  return ptr;
}

bool ScenarioEngine::do_transfer(msg::Channel* ch, std::uint32_t len,
                                 std::uint64_t src_off, std::uint64_t dst_off) {
  ++counters_.transfers_attempted;
  if (ch == nullptr) {
    ++counters_.transfers_failed;
    return false;
  }
  if (ok(ch->transfer_auto(src_off, dst_off, len))) {
    ++counters_.transfers_ok;
    return true;
  }
  ++counters_.transfers_failed;
  return false;
}

// --- actor seeding -----------------------------------------------------------

void ScenarioEngine::seed_actors() {
  std::uint64_t uid = 0;

  switch (spec_.pattern) {
    case Pattern::RpcFanout:
    case Pattern::SkewedKv:
      for (HostId h = first_client_host(); h < spec_.hosts; ++h)
        for (std::uint32_t t = 0; t < spec_.tenants_per_host; ++t)
          clients_.push_back({h, t, Rng(actor_seed(spec_.seed, uid++)),
                              spec_.ops_per_tenant});
      break;
    case Pattern::Pipeline:
      for (std::uint32_t t = 0; t < spec_.tenants_per_host; ++t)
        clients_.push_back({0, t, Rng(actor_seed(spec_.seed, uid++)),
                            spec_.ops_per_tenant});
      break;
    case Pattern::PsAllreduce:
    case Pattern::Collectives:
      break;  // driven by round events, not per-tenant actors
    case Pattern::KvService:
      break;  // kv actors were materialised by build_kv_service()
  }

  if (spec_.churn_regs_per_tenant > 0)
    for (HostId h = 0; h < spec_.hosts; ++h)
      for (std::uint32_t t = 0; t < spec_.tenants_per_host; ++t)
        churners_.push_back({h, t, Rng(actor_seed(spec_.seed, uid++)),
                             spec_.churn_regs_per_tenant,
                             {},
                             0});

  for (std::size_t i = 0; i < clients_.size(); ++i) {
    ClientActor& a = clients_[i];
    const Nanos start = a.rng.below(spec_.think_ns + 1);
    switch (spec_.pattern) {
      case Pattern::RpcFanout:
        sched_->post(start, a.host, [this, i] { run_rpc_op(i); });
        break;
      case Pattern::SkewedKv:
        sched_->post(start, a.host, [this, i] { run_kv_op(i); });
        break;
      case Pattern::Pipeline:
        sched_->post(start, a.host, [this, i] { run_pipeline_emit(i); });
        break;
      default:
        break;
    }
  }
  for (std::size_t i = 0; i < kv_actors_.size(); ++i) {
    KvActor& a = kv_actors_[i];
    const Nanos start = a.rng.below(spec_.think_ns + 1);
    sched_->post(start, a.host, [this, i] { run_kvsvc_op(i); });
  }
  if (spec_.pattern == Pattern::PsAllreduce && spec_.rounds > 0)
    sched_->post(0, 0, [this] { run_ps_begin_round(); });
  if (spec_.pattern == Pattern::Collectives && spec_.rounds > 0)
    sched_->post(0, 0, [this] { run_collectives_round(); });

  for (std::size_t i = 0; i < churners_.size(); ++i) {
    ChurnActor& c = churners_[i];
    const Nanos start = 1 + c.rng.below(spec_.think_ns + 1);
    sched_->post(start, c.host, [this, i] { run_churn_op(i); });
  }
}

// --- RPC fan-out -------------------------------------------------------------

void ScenarioEngine::pick_fanout_targets(Rng& rng, std::uint32_t* out,
                                         std::uint32_t k) {
  // Partial Fisher-Yates over the persistent permutation: a uniform
  // k-subset of servers per request in O(k). The permutation is shared
  // across clients (the serial byte surface depends on that), so threaded
  // draws serialize here.
  sync::Guard g(fanout_mu_);
  const auto n = static_cast<std::uint32_t>(fanout_perm_.size());
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(rng.below(n - i));
    std::swap(fanout_perm_[i], fanout_perm_[j]);
    out[i] = fanout_perm_[i];
  }
}

void ScenarioEngine::run_rpc_op(std::size_t actor) {
  ClientActor& a = clients_[actor];
  const Nanos issued = sched_->now();

  std::uint32_t targets[64];
  const std::uint32_t k = std::min<std::uint32_t>(spec_.fanout, 64);
  pick_fanout_targets(a.rng, targets, k);
  std::vector<HostId> lockset(targets, targets + k);
  lockset.push_back(a.host);
  HostGuard hg(*cluster_, sync_policy().is_threaded(), std::move(lockset));
  ThreadCostMeter sw;
  Nanos done = issued;
  for (std::uint32_t i = 0; i < k; ++i) {
    const HostId srv = targets[i];
    const bool sent = do_transfer(channel(a.host, srv), spec_.request_bytes);
    const bool replied =
        do_transfer(channel(srv, a.host), spec_.response_bytes);
    ++server_ops_[srv];
    server_bytes_[srv] += spec_.request_bytes + spec_.response_bytes;
    if (sent && replied) ++counters_.verify_ok;  // round trip completed
  }
  ++counters_.rpcs;
  done = sched_->charge_host(a.host, issued, sw.elapsed());
  for (std::uint32_t i = 0; i < k; ++i) sched_->hold_host(targets[i], done);
  record_latency(done - issued);
  if (--a.remaining > 0)
    sched_->post(done + spec_.think_ns, a.host,
                 [this, actor] { run_rpc_op(actor); });
}

// --- skewed KV ---------------------------------------------------------------

std::uint32_t ScenarioEngine::zipf_sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return spec_.keys - 1;
  return static_cast<std::uint32_t>(it - zipf_cdf_.begin());
}

void ScenarioEngine::run_kv_op(std::size_t actor) {
  ClientActor& a = clients_[actor];
  const Nanos issued = sched_->now();

  const bool put = a.rng.chance(spec_.put_fraction);
  const std::uint32_t key = zipf_sample(a.rng);
  const HostId srv = key % spec_.servers;
  HostGuard hg(*cluster_, sync_policy().is_threaded(), {a.host, srv});
  ThreadCostMeter sw;
  msg::Channel* req = channel(a.host, srv);
  msg::Channel* resp = channel(srv, a.host);

  bool complete;
  if (put) {
    complete = do_transfer(req, spec_.value_bytes);
    complete &= do_transfer(resp, spec_.response_bytes);
    ++counters_.kv_puts;
  } else {
    complete = do_transfer(req, spec_.request_bytes);
    complete &= do_transfer(resp, spec_.value_bytes);
    ++counters_.kv_gets;
    // Spot-check every 64th completed GET: the payload that landed in the
    // client heap must carry the server's marker.
    if (complete && counters_.kv_gets % 64 == 0) {
      std::array<std::byte, 8> got{};
      if (ok(resp->fetch(0, got))) {
        const std::uint64_t want = kGolden * (srv + 1) ^ spec_.seed;
        if (read_marker(got) == want)
          ++counters_.verify_ok;
        else
          ++counters_.verify_failed;
      }
    }
  }
  ++server_ops_[srv];
  server_bytes_[srv] += put ? spec_.value_bytes + spec_.response_bytes
                            : spec_.request_bytes + spec_.value_bytes;

  const Nanos done = sched_->charge_host(a.host, issued, sw.elapsed());
  sched_->hold_host(srv, done);
  record_latency(done - issued);
  if (--a.remaining > 0)
    sched_->post(done + spec_.think_ns, a.host,
                 [this, actor] { run_kv_op(actor); });
}

// --- streaming pipeline ------------------------------------------------------

void ScenarioEngine::run_pipeline_emit(std::size_t actor) {
  ClientActor& a = clients_[actor];
  const Nanos issued = sched_->now();
  const std::uint64_t record = page_round(spec_.record_bytes);
  const std::uint64_t slots = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(64, spec_.channel_heap_bytes / record));
  // Backpressure: at most `slots` records in flight end to end. With that
  // credit, record seq-slots has retired before seq is emitted, so the slot
  // it shared on every channel has been drained - restaging cannot corrupt
  // a record still traversing the pipe. Emit events all live on host 0's
  // lane, so pipeline_seq_ needs no lock; pipeline_retired_ is relaxed.
  if (pipeline_seq_ - pipeline_retired_.load() >= slots) {
    sched_->post(issued + std::max<Nanos>(spec_.think_ns, 100), a.host,
                 [this, actor] { run_pipeline_emit(actor); });
    return;
  }
  // The guard covers the first hop's host.
  HostGuard hg(*cluster_, sync_policy().is_threaded(), {0, 1});
  ThreadCostMeter sw;

  const std::uint64_t seq = pipeline_seq_++;
  const std::uint64_t slot_off = (seq % slots) * record;
  const std::uint64_t marker = actor_seed(spec_.seed, kGolden ^ seq);

  msg::Channel* out = channel(0, 1);
  bool sent = false;
  if (out != nullptr) {
    const auto buf = marked_payload(spec_.record_bytes, marker);
    (void)out->stage(slot_off, buf);
    sent = do_transfer(out, spec_.record_bytes, slot_off, slot_off);
  } else {
    sent = do_transfer(nullptr, spec_.record_bytes);
  }

  const Nanos done = sched_->charge_host(a.host, issued, sw.elapsed());
  sched_->hold_host(1, done);
  if (sent)
    sched_->post(done, 1, [this, slot_off, marker] {
      run_pipeline_hop(1, slot_off, marker);
    });
  else
    ++pipeline_retired_;  // dropped on the first wire: credit comes back
  if (--a.remaining > 0)
    sched_->post(done + spec_.think_ns, a.host,
                 [this, actor] { run_pipeline_emit(actor); });
}

void ScenarioEngine::run_pipeline_hop(HostId host, std::uint64_t slot_off,
                                      std::uint64_t marker) {
  const Nanos issued = sched_->now();
  std::vector<HostId> lockset{host - 1, host};
  if (host + 1 < spec_.hosts) lockset.push_back(host + 1);
  HostGuard hg(*cluster_, sync_policy().is_threaded(), std::move(lockset));
  ThreadCostMeter sw;

  msg::Channel* in = channel(host - 1, host);
  if (host == spec_.hosts - 1) {
    std::array<std::byte, 8> got{};
    if (in != nullptr && ok(in->fetch(slot_off, got))) {
      if (read_marker(got) == marker)
        ++counters_.verify_ok;
      else
        ++counters_.verify_failed;
    }
    ++counters_.records_delivered;
    ++pipeline_retired_;
    const Nanos done = sched_->charge_host(host, issued, sw.elapsed());
    record_latency(done - issued);
    return;
  }

  std::vector<std::byte> buf(spec_.record_bytes);
  bool forwarded = false;
  if (in != nullptr && ok(in->fetch(slot_off, buf))) {
    msg::Channel* out = channel(host, host + 1);
    if (out != nullptr) {
      (void)out->stage(slot_off, buf);
      forwarded = do_transfer(out, spec_.record_bytes, slot_off, slot_off);
    } else {
      forwarded = do_transfer(nullptr, spec_.record_bytes);
    }
  }
  const Nanos done = sched_->charge_host(host, issued, sw.elapsed());
  sched_->hold_host(host + 1, done);
  if (forwarded)
    sched_->post(done, host + 1, [this, host, slot_off, marker] {
      run_pipeline_hop(host + 1, slot_off, marker);
    });
  else
    ++pipeline_retired_;  // record died mid-pipe: release its slot credit
}

// --- parameter-server allreduce ----------------------------------------------

void ScenarioEngine::run_ps_begin_round() {
  const Nanos issued = sched_->now();
  // Round boundaries touch every rank's comm state: lock the cluster.
  HostGuard hg(*cluster_, sync_policy().is_threaded(), all_hosts(spec_.hosts));
  ThreadCostMeter sw;
  const std::uint32_t workers = spec_.hosts - 1;
  const std::uint64_t region = page_round(spec_.shard_bytes);

  ps_recv_reqs_.assign(workers, mp::kInvalidReq);
  for (std::uint32_t w = 1; w <= workers; ++w)
    ps_recv_reqs_[w - 1] =
        comm_->irecv(0, static_cast<std::int32_t>(w),
                     static_cast<std::int32_t>(2 * ps_round_), w * region,
                     spec_.shard_bytes);

  const Nanos done = sched_->charge_host(0, issued, sw.elapsed());
  for (std::uint32_t w = 1; w <= workers; ++w)
    sched_->post(done, w, [this, w] { run_ps_push(w); });
}

void ScenarioEngine::run_ps_push(std::uint32_t worker) {
  const Nanos issued = sched_->now();
  HostGuard hg(*cluster_, sync_policy().is_threaded(), {0, worker});
  ThreadCostMeter sw;

  // Round-dependent gradient: u64s all equal to (round+1)*worker, so the
  // reduced sum is predictable and the result broadcast verifiable.
  const std::uint64_t val =
      static_cast<std::uint64_t>(ps_round_ + 1) * worker;
  std::vector<std::byte> shard(spec_.shard_bytes);
  for (std::size_t i = 0; i + 8 <= shard.size(); i += 8)
    std::memcpy(&shard[i], &val, 8);
  (void)comm_->stage(worker, 0, shard);

  ++counters_.transfers_attempted;
  const mp::ReqId req =
      comm_->isend(worker, 0, static_cast<std::int32_t>(2 * ps_round_), 0,
                   spec_.shard_bytes);
  if (req != mp::kInvalidReq && comm_->wait(req))
    ++counters_.transfers_ok;
  else
    ++counters_.transfers_failed;

  // Pre-post the result receive before the server can send it.
  ps_result_reqs_[worker - 1] =
      comm_->irecv(worker, 0, static_cast<std::int32_t>(2 * ps_round_ + 1), 0,
                   spec_.shard_bytes);

  const Nanos done = sched_->charge_host(worker, issued, sw.elapsed());
  sched_->hold_host(0, done);
  record_latency(done - issued);
  sched_->post(done, 0, [this, worker] { run_ps_arrival(worker); });
}

void ScenarioEngine::run_ps_arrival(std::uint32_t worker) {
  const Nanos issued = sched_->now();
  // The last arrival reduces and broadcasts to every worker: lock them all.
  HostGuard hg(*cluster_, sync_policy().is_threaded(), all_hosts(spec_.hosts));
  ThreadCostMeter sw;
  const std::uint32_t workers = spec_.hosts - 1;
  const std::uint64_t region = page_round(spec_.shard_bytes);
  const std::uint32_t count = spec_.shard_bytes / 8;

  if (ps_recv_reqs_[worker - 1] != mp::kInvalidReq)
    (void)comm_->wait(ps_recv_reqs_[worker - 1]);

  if (++ps_arrived_ == workers) {
    // Reduce: fold every worker region, verifying each shard's fill.
    std::vector<std::uint64_t> acc(count, 0);
    std::vector<std::byte> raw(spec_.shard_bytes);
    for (std::uint32_t w = 1; w <= workers; ++w) {
      if (!ok(comm_->fetch(0, w * region, raw))) continue;
      const std::uint64_t want =
          static_cast<std::uint64_t>(ps_round_ + 1) * w;
      std::uint64_t first = 0;
      std::memcpy(&first, raw.data(), 8);
      if (first == want)
        ++counters_.verify_ok;
      else
        ++counters_.verify_failed;
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t v = 0;
        std::memcpy(&v, &raw[i * 8], 8);
        acc[i] += v;
      }
    }
    ps_expected_sum_ = 0;
    for (std::uint32_t w = 1; w <= workers; ++w)
      ps_expected_sum_ += static_cast<std::uint64_t>(ps_round_ + 1) * w;
    std::vector<std::byte> result(spec_.shard_bytes);
    for (std::uint32_t i = 0; i < count; ++i)
      std::memcpy(&result[i * 8], &acc[i], 8);
    (void)comm_->stage(0, 0, result);

    for (std::uint32_t w = 1; w <= workers; ++w) {
      ++counters_.transfers_attempted;
      const mp::ReqId req = comm_->isend(
          0, w, static_cast<std::int32_t>(2 * ps_round_ + 1), 0,
          spec_.shard_bytes);
      if (req != mp::kInvalidReq && comm_->wait(req))
        ++counters_.transfers_ok;
      else
        ++counters_.transfers_failed;
    }

    ++counters_.allreduce_rounds;
    ps_arrived_ = 0;
    ++ps_round_;
    const Nanos done = sched_->charge_host(0, issued, sw.elapsed());
    for (std::uint32_t w = 1; w <= workers; ++w) {
      sched_->hold_host(w, done);
      sched_->post(done, w, [this, w] { run_ps_worker_check(w); });
    }
    if (ps_round_ < spec_.rounds)
      sched_->post(done, 0, [this] { run_ps_begin_round(); });
  } else {
    sched_->charge_host(0, issued, sw.elapsed());
  }
}

void ScenarioEngine::run_ps_worker_check(std::uint32_t worker) {
  const Nanos issued = sched_->now();
  HostGuard hg(*cluster_, sync_policy().is_threaded(), {0, worker});
  ThreadCostMeter sw;
  if (ps_result_reqs_[worker - 1] != mp::kInvalidReq &&
      comm_->wait(ps_result_reqs_[worker - 1])) {
    std::array<std::byte, 8> got{};
    if (ok(comm_->fetch(worker, 0, got))) {
      std::uint64_t v = 0;
      std::memcpy(&v, got.data(), 8);
      if (v == ps_expected_sum_)
        ++counters_.verify_ok;
      else
        ++counters_.verify_failed;
    }
  }
  sched_->charge_host(worker, issued, sw.elapsed());
}

// --- collectives (E12) -------------------------------------------------------

void ScenarioEngine::run_collectives_round() {
  const Nanos issued = sched_->now();
  // A collective involves every rank; the cluster-wide guard also keeps the
  // report_ scalar accumulation below single-writer.
  HostGuard hg(*cluster_, sync_policy().is_threaded(), all_hosts(spec_.hosts));
  ThreadCostMeter total;

  if (collective_round_ == 0) {
    // Replays bench_e12 exactly: stage the root payload, one warmup
    // barrier, then the timed sequence - same ops, same clock deltas.
    const std::vector<std::byte> payload(spec_.payload_bytes, std::byte{0xAB});
    (void)mesh_->stage_rank(0, 0, payload);
    (void)mesh_->barrier();
  }

  {
    ThreadCostMeter sw;
    const KStatus st = mesh_->barrier();
    report_.barrier_ns += sw.elapsed();
    ++counters_.transfers_attempted;
    ok(st) ? ++counters_.transfers_ok : ++counters_.transfers_failed;
  }
  {
    const std::uint64_t before = mesh_->stats().p2p_msgs;
    ThreadCostMeter sw;
    const KStatus st = mesh_->broadcast(0, 0, spec_.payload_bytes);
    report_.broadcast_ns += sw.elapsed();
    report_.bcast_msgs += mesh_->stats().p2p_msgs - before;
    ++counters_.transfers_attempted;
    ok(st) ? ++counters_.transfers_ok : ++counters_.transfers_failed;
  }
  {
    ThreadCostMeter sw;
    const KStatus st = mesh_->allreduce_sum(0, spec_.allreduce_count);
    report_.allreduce_ns += sw.elapsed();
    ++counters_.transfers_attempted;
    ok(st) ? ++counters_.transfers_ok : ++counters_.transfers_failed;
  }
  {
    ThreadCostMeter sw;
    const KStatus st = mesh_->alltoall(128 * 1024, spec_.alltoall_block);
    report_.alltoall_ns += sw.elapsed();
    ++counters_.transfers_attempted;
    ok(st) ? ++counters_.transfers_ok : ++counters_.transfers_failed;
  }
  counters_.bytes_moved +=
      static_cast<std::uint64_t>(spec_.payload_bytes) * (spec_.hosts - 1) +
      static_cast<std::uint64_t>(spec_.alltoall_block) * spec_.hosts *
          (spec_.hosts - 1);

  const Nanos done = sched_->charge_host(0, issued, total.elapsed());
  for (HostId h = 1; h < spec_.hosts; ++h) sched_->hold_host(h, done);
  record_latency(done - issued);
  if (++collective_round_ < spec_.rounds)
    sched_->post(done, 0, [this] { run_collectives_round(); });
}

// --- kv-server service tier --------------------------------------------------

bool ScenarioEngine::kvsvc_reconnect(KvActor& a, KvConnRef& ref) {
  std::uint32_t conn = 0;
  if (!ok(kv_clients_[a.client]->connect(*kv_servers_[ref.server], ref.tenant,
                                         conn))) {
    ++kvsvc_stats_.reconnect_failed;
    return false;
  }
  ref.conn = conn;
  ref.open = true;
  return true;
}

void ScenarioEngine::kvsvc_account(const svc::KvResult& r,
                                   std::uint32_t server) {
  ++counters_.transfers_attempted;
  const bool served = r.data_ok && (r.status == svc::KvStatus::Ok ||
                                    r.status == svc::KvStatus::NotFound);
  served ? ++counters_.transfers_ok : ++counters_.transfers_failed;
  if (r.op == svc::KvOp::Get && r.status == svc::KvStatus::Ok)
    r.data_ok ? ++counters_.verify_ok : ++counters_.verify_failed;
  else if (!r.data_ok)
    ++counters_.verify_failed;
  ++server_ops_[server];
  server_bytes_[server] += r.value_len;
}

void ScenarioEngine::run_kvsvc_churn(KvActor& a) {
  --a.churn_remaining;
  a.ops_since_churn = 0;
  svc::KvClient& cli = *kv_clients_[a.client];
  KvConnRef* ref = nullptr;
  for (std::uint32_t tries = 0;
       tries < a.conns.size() && ref == nullptr; ++tries) {
    KvConnRef& r = a.conns[a.next_conn++ % a.conns.size()];
    if (r.open) ref = &r;
  }
  if (ref == nullptr) return;  // nothing connected to churn
  svc::KvServer& srv = *kv_servers_[ref->server];

  if (a.rng.chance(spec_.churn_abandon_fraction)) {
    // Abrupt: leave requests in flight so the *server* discovers the loss -
    // its replies bounce with ErrDisconnected and it must reclaim the
    // connection's pins and governor charge on its own. These requests are
    // lost by design and never enter the transfer accounting.
    for (std::uint32_t i = 0;
         i < spec_.pipeline_window && cli.can_issue(ref->conn); ++i) {
      std::uint64_t req_id = 0;
      if (!ok(cli.get(ref->conn, zipf_sample(a.rng), req_id))) break;
    }
    (void)cli.flush(ref->conn);
    (void)cli.abandon(ref->conn);
    while (srv.service() != 0) {
    }
    srv.drain();
  } else {
    const std::uint32_t sc = cli.server_conn(ref->conn);
    (void)cli.close(ref->conn);
    (void)srv.close(sc);
  }
  ref->open = false;
  (void)kvsvc_reconnect(a, *ref);  // shed slots get retried by later events
}

void ScenarioEngine::run_kvsvc_op(std::size_t actor) {
  KvActor& a = kv_actors_[actor];
  const Nanos issued = sched_->now();
  // An actor's connections fan over every server, and harvest() can surface
  // completions from any of them: lock the client host plus all servers.
  std::vector<HostId> lockset = all_hosts(spec_.servers);
  lockset.push_back(a.host);
  HostGuard hg(*cluster_, sync_policy().is_threaded(), std::move(lockset));
  ThreadCostMeter sw;
  svc::KvClient& cli = *kv_clients_[a.client];

  std::uint32_t touched_server = UINT32_MAX;
  std::vector<svc::KvResult> results;  ///< per-event harvest scratch

  if (a.churn_remaining > 0 && a.ops_since_churn >= a.churn_every) {
    run_kvsvc_churn(a);
  } else if (a.ops_remaining > 0) {
    // Next usable connection, round-robin; closed (shed) slots get a
    // reconnect attempt on the way past.
    KvConnRef* ref = nullptr;
    for (std::uint32_t tries = 0;
         tries < a.conns.size() && ref == nullptr; ++tries) {
      KvConnRef& r = a.conns[a.next_conn++ % a.conns.size()];
      if (!r.open && !kvsvc_reconnect(a, r)) continue;
      ref = &r;
    }
    if (ref == nullptr) {
      // Every slot shed and the server still refuses: allow a few retries,
      // then drop the remaining (never-issued) ops so the run terminates.
      if (++a.stalls > 8) a.ops_remaining = 0;
    } else {
      a.stalls = 0;
      touched_server = ref->server;
      svc::KvServer& srv = *kv_servers_[ref->server];
      // Fill the connection's pipeline window in one burst, flush the burst
      // behind one doorbell, let the server run batched service cycles, then
      // harvest the responses.
      const std::uint32_t burst =
          std::min(spec_.pipeline_window, a.ops_remaining);
      for (std::uint32_t i = 0; i < burst && cli.can_issue(ref->conn); ++i) {
        const bool put = a.rng.chance(spec_.put_fraction);
        const std::uint64_t key = zipf_sample(a.rng);
        const bool large = a.rng.chance(spec_.large_fraction);
        std::uint64_t req_id = 0;
        KStatus st;
        if (put) {
          const std::uint32_t len =
              large ? spec_.large_value_bytes : spec_.value_bytes;
          std::vector<std::byte> value(len);
          svc::KvClient::fill_value(value, key, spec_.seed);
          st = cli.put(ref->conn, key, value, req_id);
        } else {
          st = cli.get(ref->conn, key, req_id);
        }
        if (!ok(st)) break;
        put ? ++counters_.kv_puts : ++counters_.kv_gets;
        a.issue_ns[req_id] = issued;
        --a.ops_remaining;
        ++a.ops_since_churn;
      }
      (void)cli.flush(ref->conn);
      while (srv.service() != 0) {
      }
      while (cli.harvest(results) != 0) {
      }
    }
  }

  const Nanos done = sched_->charge_host(a.host, issued, sw.elapsed());
  if (touched_server != UINT32_MAX) sched_->hold_host(touched_server, done);
  for (const svc::KvResult& r : results) {
    kvsvc_account(r, touched_server == UINT32_MAX ? 0 : touched_server);
    const auto it = a.issue_ns.find(r.req_id);
    const Nanos t0 = it == a.issue_ns.end() ? issued : it->second;
    if (it != a.issue_ns.end()) a.issue_ns.erase(it);
    record_latency(done - t0);
  }
  std::uint64_t open = 0;
  for (const auto& s : kv_servers_) open += s->open_conns();
  kvsvc_stats_.peak_open_conns = std::max(kvsvc_stats_.peak_open_conns, open);
  if (a.ops_remaining > 0 || a.churn_remaining > 0)
    sched_->post(done + spec_.think_ns, a.host,
                 [this, actor] { run_kvsvc_op(actor); });
}

// --- registration churn ------------------------------------------------------

void ScenarioEngine::run_churn_op(std::size_t actor) {
  ChurnActor& c = churners_[actor];
  Tenant& t = tenants_[c.host][c.tenant];
  const Nanos issued = sched_->now();
  HostGuard hg(*cluster_, sync_policy().is_threaded(), {c.host});
  ThreadCostMeter sw;

  const std::uint64_t slab_slot = page_round(spec_.churn_bytes);
  if (c.held.size() >= spec_.churn_hold) {
    if (ok(t.vipl->deregister_mem(c.held.front())))
      ++counters_.deregistrations;
    c.held.erase(c.held.begin());
  } else {
    const auto max_pages =
        static_cast<std::uint32_t>(slab_slot / simkern::kPageSize);
    const auto pages = 1 + static_cast<std::uint32_t>(c.rng.below(max_pages));
    const simkern::VAddr addr =
        t.churn_pool + (c.next_slot % spec_.churn_hold) * slab_slot;
    ++c.next_slot;
    via::MemHandle mh;
    if (ok(t.vipl->register_mem(addr, pages * simkern::kPageSize, mh))) {
      c.held.push_back(mh);
      ++counters_.registrations_ok;
    } else {
      ++counters_.registrations_failed;
    }
    --c.remaining;
  }

  const Nanos done = sched_->charge_host(c.host, issued, sw.elapsed());
  if (c.remaining > 0)
    sched_->post(done + spec_.think_ns, c.host,
                 [this, actor] { run_churn_op(actor); });
}

// --- latency -----------------------------------------------------------------

void ScenarioEngine::record_latency(Nanos ns) {
  const auto bucket = static_cast<std::size_t>(std::bit_width(ns));
  ++lat_hist_[std::min<std::size_t>(bucket, lat_hist_.size() - 1)];
  ++lat_samples_;
}

Nanos ScenarioEngine::percentile(double q) const {
  if (lat_samples_ == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(lat_samples_));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < lat_hist_.size(); ++b) {
    cum += lat_hist_[b];
    if (cum > target) return b == 0 ? 0 : (Nanos{1} << b) - 1;
  }
  return Nanos{1} << (lat_hist_.size() - 1);
}

// --- run / teardown / audit --------------------------------------------------

KStatus ScenarioEngine::run() {
  if (spec_.threads > 1) {
    ThreadedExecutor exec(spec_.threads);
    return run(exec);
  }
  SerialExecutor exec;
  return run(exec);
}

KStatus ScenarioEngine::run(Executor& exec) {
  assert(built_ && !ran_);
  // A multi-threaded executor depends on the locks build() armed; a spec
  // built serial has no-op locks everywhere and must stay single-threaded.
  if (exec.threads() > 1 && !sync_policy().is_threaded()) return KStatus::Inval;
  ran_ = true;
  setup_sampler(exec);
  seed_actors();
  exec.run(*sched_);
  report_.makespan_ns = sched_->now();
  if (sampler_) {
    // Close the timeline with one sample at the drained clock, so short
    // runs (makespan < interval) still export the end-of-run view. Skip it
    // when the last interval tick already landed exactly there.
    const Nanos end = sched_->now();
    if (sampler_->samples().empty() || sampler_->samples().back().when != end)
      sampler_->sample(end);
  }
  teardown();
  audit();
  fill_report();
  return KStatus::Ok;
}

void ScenarioEngine::setup_sampler(Executor& exec) {
  const bool wanted = spec_.sample_interval > 0 || !spec_.slo_rules.empty() ||
                      timeline_requested_;
  if (!wanted) return;

  obs::Sampler::Config cfg;
  if (spec_.sample_interval > 0) cfg.interval = spec_.sample_interval;
  cfg.trace_metrics = trace_metrics_;
  sampler_ = std::make_unique<obs::Sampler>(std::move(cfg));
  for (HostId h = 0; h < spec_.hosts; ++h)
    sampler_->add_registry(&cluster_->node(h).kernel().metrics());

  if (sync_policy().is_threaded()) {
    // Scheduler post-lock contention plus per-worker cpu time. The extra
    // captures the executor, which outlives every sample() call: ticks fire
    // inside exec.run(), and the final end-of-run sample is taken in run()
    // while `exec` is still on the caller's stack.
    sched_->post_mutex().set_stats(&post_mu_stats_);
    Executor* ep = &exec;
    sampler_->add_extra("obs", [this, ep](obs::MetricSink& s) {
      obs::emit_contention(s, "sched.post_mu", post_mu_stats_);
      for (std::uint32_t w = 0; w < ep->threads(); ++w)
        s.gauge("worker." + std::to_string(w) + ".cpu_ns",
                ep->worker_cpu_ns(w));
    });
  }

  for (const SloRule& r : spec_.slo_rules) {
    obs::SloSpec s;
    s.metric = r.metric;
    s.op = r.op == "lt"   ? obs::SloOp::Lt
           : r.op == "gt" ? obs::SloOp::Gt
           : r.op == "ge" ? obs::SloOp::Ge
                          : obs::SloOp::Le;
    s.threshold = r.threshold;
    s.window = r.window;
    sampler_->add_slo(std::move(s));
  }
  if (!spec_.slo_rules.empty()) {
    // Arm host 0's flight recorder so the first violated tick captures a
    // postmortem of the still-running cluster - before teardown destroys
    // the state and before audit() flips invariants_ok.
    simkern::Kernel& k0 = cluster_->node(0).kernel();
    k0.flight().set_seed(spec_.seed);
    k0.flight().set_sink(
        [this](std::string_view reason, const std::string& json) {
          flight_dumps_.emplace_back(std::string(reason), json);
        });
    sampler_->set_slo_hook(
        [this](const obs::SloSpec& rule, const obs::SloFiring&) {
          cluster_->node(0).kernel().flight_dump("slo:" + rule.metric);
        });
  }

  // Serial: the scheduler fires interval ticks between events. Threaded:
  // the executor fires one tick per drained epoch (scheduler.h).
  sched_->set_tick(sampler_->interval(), [this](Nanos t) { sampler_->sample(t); });
}

void ScenarioEngine::teardown() {
  // Disarm fault injection first: teardown must be able to release
  // everything, and injected failures here would fake invariant violations.
  if (faults_) cluster_->inject_faults(nullptr);

  for (const auto& [key, ch] : channels_)
    counters_.bytes_moved += ch->stats().bytes_moved;
  if (comm_) counters_.bytes_moved += comm_->stats().bytes;

  // kv-server pattern: capture the svc tier's accounting before destroying
  // it. Clients go first (their disconnects are ordinary peer departures),
  // then each server's shutdown must leave its node audit-clean.
  for (const auto& c : kv_clients_) {
    const svc::KvClientStats& cs = c->stats();
    kvsvc_stats_.client_requests_lost += cs.requests_lost;
    kvsvc_stats_.client_data_corrupt += cs.data_corrupt;
    kvsvc_stats_.client_stale_completions += cs.stale_completions;
    kvsvc_stats_.client_inline_bytes += cs.inline_bytes;
    kvsvc_stats_.client_rendezvous_bytes += cs.rendezvous_bytes;
    kvsvc_stats_.client_doorbell_flushes += cs.doorbell_flushes;
  }
  kv_clients_.clear();
  for (const auto& s : kv_servers_) {
    s->shutdown();
    const svc::KvServerStats& ss = s->stats();
    kvsvc_stats_.conns_accepted += ss.conns_accepted;
    kvsvc_stats_.conns_shed += ss.conns_shed;
    kvsvc_stats_.conns_closed += ss.conns_closed;
    kvsvc_stats_.conns_abandoned += ss.conns_abandoned;
    kvsvc_stats_.admission_rejected += ss.admission_rejected;
    kvsvc_stats_.requests += ss.requests;
    kvsvc_stats_.gets += ss.gets;
    kvsvc_stats_.puts += ss.puts;
    kvsvc_stats_.not_found += ss.not_found;
    kvsvc_stats_.corrupt_payloads += ss.corrupt_payloads;
    kvsvc_stats_.arena_full += ss.arena_full;
    kvsvc_stats_.inline_bytes += ss.inline_bytes;
    kvsvc_stats_.eager_copies += ss.eager_copies;
    kvsvc_stats_.rendezvous_ops += ss.rendezvous_ops;
    kvsvc_stats_.rendezvous_bytes += ss.rendezvous_bytes;
    kvsvc_stats_.rendezvous_failed += ss.rendezvous_failed;
    kvsvc_stats_.batches += ss.batches;
    kvsvc_stats_.batched_completions += ss.batched_completions;
    kvsvc_stats_.batched_replies += ss.batched_replies;
    kvsvc_stats_.requests_dropped += ss.requests_dropped;
    kvsvc_stats_.send_errors += ss.send_errors;
    counters_.bytes_moved += ss.inline_bytes + ss.rendezvous_bytes;
  }
  kv_servers_.clear();

  for (ChurnActor& c : churners_) {
    Tenant& t = tenants_[c.host][c.tenant];
    for (const via::MemHandle& mh : c.held)
      if (ok(t.vipl->deregister_mem(mh))) ++counters_.deregistrations;
    c.held.clear();
  }

  std::vector<std::pair<HostId, simkern::Pid>> infra;
  if (mesh_) {
    for (std::uint32_t r = 0; r < spec_.hosts; ++r)
      infra.emplace_back(r, mesh_->rank_pid(r));
    mesh_.reset();
  }
  if (comm_) {
    for (std::uint32_t r = 0; r < spec_.hosts; ++r)
      infra.emplace_back(r, comm_->rank_pid(r));
    comm_.reset();
  }
  channels_.clear();

  for (HostId h = 0; h < spec_.hosts; ++h)
    for (const Tenant& t : tenants_[h])
      cluster_->node(h).agent().release_tenant(t.pid);
  for (const auto& [h, pid] : infra)
    cluster_->node(h).agent().release_tenant(pid);
  for (HostId h = 0; h < spec_.hosts; ++h)
    if (auto* gov = cluster_->node(h).governor()) gov->flush();
}

void ScenarioEngine::violation(std::string msg) {
  report_.violations.push_back(std::move(msg));
}

void ScenarioEngine::audit() {
  if (counters_.transfers_attempted !=
      counters_.transfers_ok + counters_.transfers_failed)
    violation("transfer accounting does not balance");
  if (spec_.fault_rules.empty()) {
    if (counters_.transfers_failed > 0)
      violation("lost transfers in a fault-free run: " +
                std::to_string(counters_.transfers_failed.load()));
    if (counters_.verify_failed > 0)
      violation("payload verification failures in a fault-free run: " +
                std::to_string(counters_.verify_failed.load()));
  }
  for (HostId h = 0; h < spec_.hosts; ++h) {
    via::Node& node = cluster_->node(h);
    if (auto* gov = node.governor(); gov != nullptr && gov->total_charged() != 0)
      violation("host " + std::to_string(h) + ": governor still charges " +
                std::to_string(gov->total_charged()) + " pages after teardown");
    if (node.kernel().pinned_frames() != 0)
      violation("host " + std::to_string(h) + ": " +
                std::to_string(node.kernel().pinned_frames()) +
                " frames still pinned after teardown");
    for (const std::string& s : node.kernel().self_check())
      violation("host " + std::to_string(h) + " self-check: " + s);
  }
  if (sampler_) {
    for (const obs::SloFiring& f : sampler_->firings()) {
      const obs::SloSpec& r = sampler_->rules()[f.rule];
      violation("slo violated: " + r.metric + " " +
                std::string(obs::to_string(r.op)) + " " +
                std::to_string(r.threshold) + " observed " +
                std::to_string(f.observed) + " at " + std::to_string(f.when) +
                "ns");
    }
  }
  report_.invariants_ok = report_.violations.empty();
}

void ScenarioEngine::fill_report() {
  report_.counters = counters_;
  const EventScheduler::Stats& ss = sched_->stats();
  report_.events_dispatched = ss.dispatched;
  report_.peak_pending = ss.peak_pending;
  report_.busy_ns = ss.busy_ns;
  report_.cpu_total_ns = cluster_->clock().now();

  for (HostId h = 0; h < spec_.hosts; ++h) {
    via::Node& node = cluster_->node(h);
    const via::AgentStats& as = node.agent().stats();
    report_.agent_registrations += as.registrations;
    report_.agent_deregistrations += as.deregistrations;
    report_.admission_rejects += as.admission_rejects;
    report_.lock_failures += as.lock_failures;
    report_.tpt_full += as.tpt_full;
    if (auto* gov = node.governor()) {
      const pinmgr::GovernorStats& gs = gov->stats();
      report_.governor_admitted += gs.admitted;
      report_.governor_rejected +=
          gs.rejected_quota + gs.rejected_ceiling + gs.rejected_injected;
    }
  }
  if (faults_) report_.faults_injected = faults_->stats().total_injected();

  report_.latency_p50_ns = percentile(0.50);
  report_.latency_p99_ns = percentile(0.99);

  if (spec_.pattern == Pattern::KvService) {
    kvsvc_stats_.p50_ns = percentile(0.50);
    kvsvc_stats_.p95_ns = percentile(0.95);
    kvsvc_stats_.p99_ns = percentile(0.99);
    kvsvc_stats_.p999_ns = percentile(0.999);
  }

  if (spec_.pattern == Pattern::RpcFanout ||
      spec_.pattern == Pattern::SkewedKv ||
      spec_.pattern == Pattern::KvService) {
    Table t({"server", "ops", "bytes"});
    for (std::uint32_t s = 0; s < spec_.servers; ++s)
      t.row({Table::num(std::uint64_t{s}), Table::num(server_ops_[s]),
             Table::num(server_bytes_[s])});
    report_.breakdown = std::move(t);
  } else {
    Table t({"metric", "value"});
    t.row({"events", Table::num(report_.events_dispatched)});
    t.row({"makespan_ns", Table::num(report_.makespan_ns)});
    t.row({"transfers_ok", Table::num(counters_.transfers_ok)});
    report_.breakdown = std::move(t);
  }
}

namespace {

std::string jquote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out + "\"";
}

}  // namespace

std::string report_json(const ScenarioSpec& spec, const ScenarioReport& r) {
  std::string out = "{\n";
  auto num = [&out](const char* key, std::uint64_t v, bool comma = true) {
    out += std::string("  \"") + key + "\": " + std::to_string(v) +
           (comma ? ",\n" : "\n");
  };
  out += "  \"name\": " + jquote(spec.name) + ",\n";
  out += "  \"pattern\": " + jquote(std::string(to_string(spec.pattern))) +
         ",\n";
  num("seed", spec.seed);
  num("hosts", spec.hosts);
  num("tenants_per_host", spec.tenants_per_host);
  num("events_dispatched", r.events_dispatched);
  num("peak_pending", r.peak_pending);
  num("makespan_ns", r.makespan_ns);
  num("busy_ns", r.busy_ns);
  num("cpu_total_ns", r.cpu_total_ns);
  num("transfers_attempted", r.counters.transfers_attempted);
  num("transfers_ok", r.counters.transfers_ok);
  num("transfers_failed", r.counters.transfers_failed);
  num("bytes_moved", r.counters.bytes_moved);
  num("registrations_ok", r.counters.registrations_ok);
  num("registrations_failed", r.counters.registrations_failed);
  num("deregistrations", r.counters.deregistrations);
  num("rpcs", r.counters.rpcs);
  num("kv_gets", r.counters.kv_gets);
  num("kv_puts", r.counters.kv_puts);
  num("records_delivered", r.counters.records_delivered);
  num("allreduce_rounds", r.counters.allreduce_rounds);
  num("verify_ok", r.counters.verify_ok);
  num("verify_failed", r.counters.verify_failed);
  num("channels_created", r.counters.channels_created);
  num("agent_registrations", r.agent_registrations);
  num("agent_deregistrations", r.agent_deregistrations);
  num("admission_rejects", r.admission_rejects);
  num("lock_failures", r.lock_failures);
  num("tpt_full", r.tpt_full);
  num("governor_admitted", r.governor_admitted);
  num("governor_rejected", r.governor_rejected);
  num("faults_injected", r.faults_injected);
  num("latency_p50_ns", r.latency_p50_ns);
  num("latency_p99_ns", r.latency_p99_ns);
  num("barrier_ns", r.barrier_ns);
  num("broadcast_ns", r.broadcast_ns);
  num("bcast_msgs", r.bcast_msgs);
  num("allreduce_ns", r.allreduce_ns);
  num("alltoall_ns", r.alltoall_ns);
  num("registrations_plus_transfers", r.registrations_plus_transfers());
  out += std::string("  \"invariants_ok\": ") +
         (r.invariants_ok ? "true" : "false") + ",\n";
  out += "  \"violations\": [";
  for (std::size_t i = 0; i < r.violations.size(); ++i)
    out += (i ? ", " : "") + jquote(r.violations[i]);
  out += "],\n";
  out += "  \"breakdown\": {\"headers\": [";
  const auto& headers = r.breakdown.headers();
  for (std::size_t i = 0; i < headers.size(); ++i)
    out += (i ? ", " : "") + jquote(headers[i]);
  out += "], \"rows\": [";
  const auto& rows = r.breakdown.rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += (i ? ", [" : "[");
    for (std::size_t j = 0; j < rows[i].size(); ++j)
      out += (j ? ", " : "") + jquote(rows[i][j]);
    out += "]";
  }
  out += "]}\n}\n";
  return out;
}

}  // namespace vialock::scenario
