// descriptor.h - VIA work-queue descriptors.
//
// "VIA communication is completely based on explicit descriptor processing"
// (companion paper in the same collection): a send/receive needs a descriptor
// on each side; RDMA needs one at the active node only. Descriptors carry
// virtual addresses qualified by memory handles; the NIC validates them
// against the TPT when the descriptor is processed.
#pragma once

#include <cstdint>
#include <numeric>
#include <string_view>
#include <vector>

#include "simkern/types.h"
#include "via/memory_handle.h"

namespace vialock::via {

using ViId = std::uint32_t;
inline constexpr ViId kInvalidVi = static_cast<ViId>(-1);

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class DescOp : std::uint8_t { Send, Recv, RdmaWrite, RdmaRead };

enum class DescStatus : std::uint8_t {
  Pending,
  Done,
  ErrProtection,   ///< TPT tag / validity / RDMA-enable check failed
  ErrNoRecvDesc,   ///< receiver had no posted descriptor (connection broken)
  ErrLength,       ///< receive buffer smaller than the incoming message
  ErrDisconnected, ///< VI not connected
};

[[nodiscard]] constexpr std::string_view to_string(DescStatus s) {
  switch (s) {
    case DescStatus::Pending: return "PENDING";
    case DescStatus::Done: return "DONE";
    case DescStatus::ErrProtection: return "ERR_PROTECTION";
    case DescStatus::ErrNoRecvDesc: return "ERR_NO_RECV_DESC";
    case DescStatus::ErrLength: return "ERR_LENGTH";
    case DescStatus::ErrDisconnected: return "ERR_DISCONNECTED";
  }
  return "ERR_?";
}

struct DataSegment {
  MemHandle handle;
  simkern::VAddr addr = 0;
  std::uint32_t length = 0;
};

struct RemoteSegment {
  MemHandle handle;  ///< communicated out of band by the peer
  simkern::VAddr addr = 0;
};

struct Descriptor {
  /// VIA descriptors carry a segment count; four is a typical NIC limit.
  static constexpr std::size_t kMaxSegments = 4;

  std::uint64_t cookie = 0;  ///< caller-chosen identifier, returned on poll
  DescOp op = DescOp::Send;
  DataSegment local;               ///< single-segment fast path
  std::vector<DataSegment> extra;  ///< additional gather/scatter segments
  RemoteSegment remote;            ///< RDMA ops only
  std::uint32_t immediate = 0;
  bool has_immediate = false;

  // Completion fields, filled by the NIC.
  DescStatus status = DescStatus::Pending;
  std::uint32_t transferred = 0;

  [[nodiscard]] bool done_ok() const { return status == DescStatus::Done; }

  [[nodiscard]] std::size_t num_segments() const { return 1 + extra.size(); }
  [[nodiscard]] const DataSegment& segment(std::size_t i) const {
    return i == 0 ? local : extra[i - 1];
  }
  /// Total bytes across all segments.
  [[nodiscard]] std::uint64_t total_length() const {
    return std::accumulate(extra.begin(), extra.end(),
                           static_cast<std::uint64_t>(local.length),
                           [](std::uint64_t acc, const DataSegment& s) {
                             return acc + s.length;
                           });
  }
};

}  // namespace vialock::via
