#include "via/unetmm.h"

#include <cassert>

namespace vialock::via {

using simkern::kPageShift;
using simkern::kPageSize;
using simkern::page_align_down;
using simkern::Pid;
using simkern::VAddr;

UnetMmAgent::UnetMmAgent(simkern::Kernel& kern, Nic& nic)
    : kern_(kern), nic_(nic) {
  kern_.add_mmu_notifier(this);
}

UnetMmAgent::~UnetMmAgent() { kern_.remove_mmu_notifier(this); }

ProtectionTag UnetMmAgent::create_ptag(Pid pid) {
  kern_.clock().advance(kern_.costs().syscall);
  if (!kern_.task_exists(pid)) return kInvalidTag;
  return next_tag_++;
}

KStatus UnetMmAgent::register_mem(Pid pid, VAddr addr, std::uint64_t len,
                                  ProtectionTag tag, MemHandle& out) {
  kern_.clock().advance(kern_.costs().syscall);
  if (tag == kInvalidTag || len == 0) return KStatus::Inval;
  if (!kern_.task_exists(pid)) return KStatus::NoEnt;

  const VAddr start = page_align_down(addr);
  const auto pages = static_cast<std::uint32_t>(
      simkern::pages_spanned(addr, len));
  const TptIndex base = nic_.tpt().alloc(pages);
  if (base == kInvalidTptIndex) return KStatus::NoSpc;

  for (std::uint32_t i = 0; i < pages; ++i) {
    const VAddr v = start + (static_cast<std::uint64_t>(i) << kPageShift);
    const KStatus st = kern_.make_present(pid, v, /*write=*/true);
    if (!ok(st)) {
      nic_.tpt().release(base, pages);
      return st;
    }
    const auto pfn = kern_.resolve(pid, v);
    assert(pfn.has_value());
    // U-Net/MM invalidates and repairs entries one page at a time, so this
    // agent always programs the order-0 dense layout (page_start == index).
    nic_.program_tpt(base + i, TptEntry{.valid = true,
                                        .pfn = *pfn,
                                        .tag = tag,
                                        .rdma_write_enable = true,
                                        .rdma_read_enable = true,
                                        .page_start = i});
  }
  out = MemHandle{.tpt_base = base,
                  .pages = pages,
                  .tpt_count = pages,
                  .vaddr = addr,
                  .length = len,
                  .tag = tag,
                  .id = next_reg_id_++};
  regs_.emplace(out.id, Registration{out, pid});
  ++stats_.registrations;
  return KStatus::Ok;
}

KStatus UnetMmAgent::deregister_mem(const MemHandle& handle) {
  kern_.clock().advance(kern_.costs().syscall);
  auto it = regs_.find(handle.id);
  if (it == regs_.end()) return KStatus::NoEnt;
  nic_.tpt().release(it->second.handle.tpt_base, it->second.handle.pages);
  regs_.erase(it);
  return KStatus::Ok;
}

void UnetMmAgent::on_invalidate(Pid pid, VAddr vaddr, simkern::Pfn /*old_pfn*/) {
  // Shoot down any TLB entry translating (pid, vaddr). Linear scan over the
  // registrations - real systems keep a reverse map; registration counts are
  // small here and the scan cost is charged per entry looked at.
  for (auto& [id, reg] : regs_) {
    if (reg.pid != pid) continue;
    const VAddr start = page_align_down(reg.handle.vaddr);
    const VAddr end =
        start + (static_cast<std::uint64_t>(reg.handle.pages) << kPageShift);
    if (vaddr < start || vaddr >= end) continue;
    const auto idx = static_cast<std::uint32_t>((vaddr - start) >> kPageShift);
    TptEntry e = nic_.tpt().get(reg.handle.tpt_base + idx);
    if (!e.valid) continue;
    e.valid = false;
    nic_.program_tpt(reg.handle.tpt_base + idx, e);
    ++stats_.invalidations;
  }
}

KStatus UnetMmAgent::repair(Registration& reg, VAddr addr, std::uint64_t len) {
  // The NIC raised a fault interrupt; the driver pages the *accessed* range
  // back in and revalidates its entries.
  kern_.clock().advance(kern_.costs().nic_page_fault);
  const VAddr reg_start = page_align_down(reg.handle.vaddr);
  const VAddr lo = page_align_down(addr);
  const VAddr hi = simkern::page_align_up(addr + (len ? len : 1));
  for (VAddr v = lo; v < hi; v += kPageSize) {
    if (v < reg_start) return KStatus::Fault;
    const auto i = static_cast<std::uint32_t>((v - reg_start) >> kPageShift);
    if (i >= reg.handle.pages) return KStatus::Fault;
    TptEntry e = nic_.tpt().get(reg.handle.tpt_base + i);
    if (e.valid) continue;
    const std::uint64_t majors_before = kern_.stats().major_faults;
    const KStatus st = kern_.make_present(reg.pid, v, /*write=*/true);
    if (!ok(st)) return st;
    if (kern_.stats().major_faults > majors_before) ++stats_.repair_pageins;
    const auto pfn = kern_.resolve(reg.pid, v);
    if (!pfn) return KStatus::Fault;
    e.pfn = *pfn;
    e.valid = true;
    nic_.program_tpt(reg.handle.tpt_base + i, e);
  }
  return KStatus::Ok;
}

namespace {
/// A fault immediately after its own repair means another reclaim stole the
/// page mid-sequence; real firmware keeps retrying. Bound it defensively.
constexpr int kMaxDmaRetries = 64;
}  // namespace

KStatus UnetMmAgent::dma_write(const MemHandle& handle, VAddr addr,
                               std::span<const std::byte> data) {
  auto it = regs_.find(handle.id);
  if (it == regs_.end()) return KStatus::NoEnt;
  KStatus st = nic_.dma_write_local(handle, addr, data);
  for (int retry = 0; st == KStatus::Fault && retry < kMaxDmaRetries; ++retry) {
    ++stats_.nic_faults;
    if (const KStatus rs = repair(it->second, addr, data.size()); !ok(rs))
      return rs;
    st = nic_.dma_write_local(handle, addr, data);
  }
  return st;
}

KStatus UnetMmAgent::dma_read(const MemHandle& handle, VAddr addr,
                              std::span<std::byte> out) {
  auto it = regs_.find(handle.id);
  if (it == regs_.end()) return KStatus::NoEnt;
  KStatus st = nic_.dma_read_local(handle, addr, out);
  for (int retry = 0; st == KStatus::Fault && retry < kMaxDmaRetries; ++retry) {
    ++stats_.nic_faults;
    if (const KStatus rs = repair(it->second, addr, out.size()); !ok(rs))
      return rs;
    st = nic_.dma_read_local(handle, addr, out);
  }
  return st;
}

}  // namespace vialock::via
