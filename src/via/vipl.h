// vipl.h - the VI Provider Library: the user-level half of VIA.
//
// Thin, unprivileged wrapper a process uses to talk to its NIC: protection
// tag creation and memory registration trap into the kernel agent (one
// simulated ioctl each); descriptor posting and completion polling go
// straight to the hardware - the defining property of user-level
// communication that VIA standardised.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "util/status.h"
#include "via/kernel_agent.h"
#include "via/nic.h"

namespace vialock::via {

class Vipl {
 public:
  /// One Vipl instance per process (`pid`) on the node served by `agent`.
  Vipl(KernelAgent& agent, simkern::Pid pid) : agent_(agent), pid_(pid) {}

  /// VipOpenNic + VipCreatePtag.
  [[nodiscard]] KStatus open();
  [[nodiscard]] ProtectionTag ptag() const { return tag_; }
  [[nodiscard]] simkern::Pid pid() const { return pid_; }

  // --- memory ------------------------------------------------------------------
  /// VipRegisterMem. `opts` defaults to RDMA-enabled; use the
  /// KernelAgent::RegisterOptions named factories (send_recv_only(),
  /// rdma_write_only(), ...) for anything else.
  [[nodiscard]] KStatus register_mem(simkern::VAddr addr, std::uint64_t len,
                                     MemHandle& out,
                                     KernelAgent::RegisterOptions opts = {});
  [[nodiscard]] KStatus deregister_mem(const MemHandle& handle);

  // --- VIs ------------------------------------------------------------------------
  /// VipCreateVi: returns Ok and fills `out`, or Proto (no open ptag) /
  /// NoSpc (the NIC's VI table is full).
  [[nodiscard]] KStatus create_vi(ViId& out, ViAttributes attrs = {});

  // --- data transfer ----------------------------------------------------------
  [[nodiscard]] KStatus post_send(ViId vi, const MemHandle& mh,
                                  simkern::VAddr addr, std::uint32_t len,
                                  std::uint64_t cookie = 0);
  [[nodiscard]] KStatus post_recv(ViId vi, const MemHandle& mh,
                                  simkern::VAddr addr, std::uint32_t len,
                                  std::uint64_t cookie = 0);
  [[nodiscard]] KStatus rdma_write(ViId vi, const MemHandle& local_mh,
                                   simkern::VAddr local_addr, std::uint32_t len,
                                   const MemHandle& remote_mh,
                                   simkern::VAddr remote_addr,
                                   std::uint64_t cookie = 0,
                                   std::optional<std::uint32_t> immediate = {});
  [[nodiscard]] KStatus rdma_read(ViId vi, const MemHandle& local_mh,
                                  simkern::VAddr local_addr, std::uint32_t len,
                                  const MemHandle& remote_mh,
                                  simkern::VAddr remote_addr,
                                  std::uint64_t cookie = 0);

  // --- scatter/gather variants ----------------------------------------------
  /// Post a send over multiple data segments (gathered in order).
  [[nodiscard]] KStatus post_send_sg(ViId vi, std::vector<DataSegment> segs,
                                     std::uint64_t cookie = 0);
  /// Post a receive scattering into multiple segments (filled in order).
  [[nodiscard]] KStatus post_recv_sg(ViId vi, std::vector<DataSegment> segs,
                                     std::uint64_t cookie = 0);

  /// VipSendDone / VipRecvDone (polling completion model: a PCI status read
  /// per call - cheap, but burns CPU while spinning).
  [[nodiscard]] std::optional<Descriptor> send_done(ViId vi);
  [[nodiscard]] std::optional<Descriptor> recv_done(ViId vi);

  /// VipSendWait / VipRecvWait (waiting completion model: the process blocks
  /// and an interrupt reawakens it - "more expensive than polling on a local
  /// memory location", the latency penalty the family's MPI comparison paper
  /// measured on MPI/Pro). Charged only when a completion is delivered.
  [[nodiscard]] std::optional<Descriptor> send_wait(ViId vi);
  [[nodiscard]] std::optional<Descriptor> recv_wait(ViId vi);

  // --- batched submission / completion (E18's modes extended; E24) -----------
  /// One entry of a post_send_batch burst.
  struct SendPost {
    MemHandle mh;
    simkern::VAddr addr = 0;
    std::uint32_t len = 0;
    std::uint64_t cookie = 0;
  };
  /// Build and post a burst of sends behind a SINGLE doorbell ring: the
  /// per-entry descriptor-build cost still applies, but the doorbell and its
  /// MMIO round amortise across the burst (Nic::post_send_batch).
  [[nodiscard]] KStatus post_send_batch(ViId vi,
                                        std::span<const SendPost> posts);

  /// One entry of a post_recv_batch burst (same shape as SendPost; a
  /// distinct type keeps send/recv call sites from mixing).
  struct RecvPost {
    MemHandle mh;
    simkern::VAddr addr = 0;
    std::uint32_t len = 0;
    std::uint64_t cookie = 0;
  };
  /// Build and pre-post a burst of receives behind a SINGLE doorbell ring
  /// (Nic::post_recv_batch) - the connection-setup / credit-refill
  /// amortisation the msg/svc tiers use.
  [[nodiscard]] KStatus post_recv_batch(ViId vi,
                                        std::span<const RecvPost> posts);

  // --- completion queues (VipCreateCQ / VipCQDone) ---------------------------
  [[nodiscard]] CqId create_cq() { return agent_.nic().create_cq(); }
  [[nodiscard]] KStatus attach_send_cq(ViId vi, CqId cq) {
    return agent_.nic().attach_send_cq(vi, cq);
  }
  [[nodiscard]] KStatus attach_recv_cq(ViId vi, CqId cq) {
    return agent_.nic().attach_recv_cq(vi, cq);
  }
  [[nodiscard]] std::optional<Nic::CqEntry> cq_done(CqId cq) {
    return agent_.nic().poll_cq(cq);
  }
  /// Batched VipCQDone: drain up to `max` completions with one PCI status
  /// read, appending to `out`. Returns the number drained.
  [[nodiscard]] std::uint32_t cq_harvest(CqId cq, std::uint32_t max,
                                         std::vector<Nic::CqEntry>& out) {
    return agent_.nic().poll_cq_batch(cq, max, out);
  }

  [[nodiscard]] Nic& nic() { return agent_.nic(); }
  [[nodiscard]] KernelAgent& agent() { return agent_; }

 private:
  [[nodiscard]] Descriptor build(DescOp op, const MemHandle& mh,
                                 simkern::VAddr addr, std::uint32_t len,
                                 std::uint64_t cookie);

  KernelAgent& agent_;
  simkern::Pid pid_;
  ProtectionTag tag_ = kInvalidTag;
};

}  // namespace vialock::via
