// fabric.h - the switched interconnect between NICs.
//
// Synchronous delivery against the shared virtual clock: transmit() charges
// wire latency + streaming time, then hands the packet to the destination
// NIC. Connection setup pairs two VIs (the VIA point-to-point model).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "util/clock.h"
#include "util/cost_model.h"
#include "util/status.h"
#include "via/nic.h"

namespace vialock::via {

class Fabric {
 public:
  Fabric(Clock& clock, const CostModel& costs) : clock_(clock), costs_(costs) {}

  /// Attach a NIC; returns its node id.
  NodeId attach(Nic& nic);

  /// Connect vi_a on node_a with vi_b on node_b (both become Connected).
  /// The out-of-band variant used when both endpoints are known.
  [[nodiscard]] KStatus connect(NodeId node_a, ViId vi_a, NodeId node_b,
                                ViId vi_b);

  // --- VIA client/server connection model -------------------------------------
  /// VipConnectWait: park `vi` on `discriminator`, awaiting a client.
  [[nodiscard]] KStatus listen(NodeId node, std::uint64_t discriminator,
                               ViId vi);
  /// VipConnectRequest: match a listener on (server_node, discriminator) and
  /// connect; Again when nobody is listening (a real client would retry).
  [[nodiscard]] KStatus connect_request(NodeId client_node, ViId client_vi,
                                        NodeId server_node,
                                        std::uint64_t discriminator);
  /// VipDisconnect: tear the connection down; the peer VI goes to Error (it
  /// learns of the disconnect the next time it is used), this one to Idle.
  [[nodiscard]] KStatus disconnect(NodeId node, ViId vi);

  /// VipDisconnect + VipConnectRequest compressed into one call: force both
  /// VIs of a (possibly broken) pairing back to Connected. This is the
  /// connection re-establishment a reliable transport performs after an
  /// injected reset; it fails with Inval when the endpoints do not exist.
  [[nodiscard]] KStatus repair(NodeId node_a, ViId vi_a, NodeId node_b,
                               ViId vi_b);

  /// Wire transfer + remote delivery; returns the sender-side status.
  [[nodiscard]] DescStatus transmit(Nic::Packet& pkt,
                                    std::vector<std::byte>* read_back);

  /// Arm fault injection on the wire: Wire (packets vanish in flight after
  /// the sender's completion) and Connection (the link resets, both VIs go
  /// to Error). nullptr disarms.
  void set_fault_engine(fault::FaultEngine* engine) { faults_ = engine; }

  [[nodiscard]] std::uint64_t packets_dropped() const {
    return packets_dropped_;
  }
  [[nodiscard]] std::uint64_t connection_resets() const {
    return connection_resets_;
  }

  [[nodiscard]] Nic& nic(NodeId id) { return *nics_.at(id); }
  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nics_.size());
  }
  [[nodiscard]] Clock& clock() { return clock_; }
  [[nodiscard]] const CostModel& costs() const { return costs_; }

 private:
  struct Listener {
    NodeId node;
    ViId vi;
  };

  Clock& clock_;
  const CostModel& costs_;
  std::vector<Nic*> nics_;
  fault::FaultEngine* faults_ = nullptr;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t connection_resets_ = 0;
  /// (server node, discriminator) -> parked VI.
  std::map<std::pair<NodeId, std::uint64_t>, Listener> listeners_;
};

}  // namespace vialock::via
