// node.h - one cluster node (kernel + NIC + agent) and the Cluster helper
// that wires several of them onto a shared fabric and virtual clock.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pinmgr/pin_governor.h"
#include "simkern/kernel.h"
#include "sync/mutex.h"
#include "sync/policy.h"
#include "util/clock.h"
#include "util/cost_model.h"
#include "via/fabric.h"
#include "via/kernel_agent.h"
#include "via/nic.h"
#include "via/policy_factory.h"

namespace vialock::via {

struct NodeSpec {
  simkern::KernelConfig kernel;
  NicConfig nic;
  PolicyKind policy = PolicyKind::Kiobuf;
  /// Execution mode for every lock inside this node (kernel, NIC TPT, lock
  /// policy, agent, governor). Serial (the default) keeps them all no-op
  /// branches; threaded arms them. Overrides spec.kernel.sync.
  sync::SyncPolicy sync;
};

/// A host: simulated kernel, VIA NIC, kernel agent with its lock policy.
class Node {
 public:
  Node(const NodeSpec& spec, Clock& clock, const CostModel& costs)
      : sync_(spec.sync),
        kernel_(with_sync(spec), clock, costs),
        nic_(kernel_, clock, costs, spec.nic),
        policy_(make_policy(spec.policy, kernel_, spec.sync)),
        agent_(kernel_, nic_, *policy_) {
    nic_.set_policy(sync_);
    agent_.set_policy(sync_);
    mu_.set_policy(sync_);
    if (sync_.is_threaded()) {
      // Host-mutex contention (the HostGuard lock the threaded executor
      // takes per event) surfaces through the kernel's registry alongside
      // the kernel-lock profile; serial exports are untouched.
      mu_.set_stats(&mu_stats_);
      kernel_.metrics().register_source(
          "sync.host", this, [this](obs::MetricSink& s) {
            obs::emit_contention(s, "mu", mu_stats_);
          });
    }
  }

  [[nodiscard]] simkern::Kernel& kernel() { return kernel_; }
  [[nodiscard]] Nic& nic() { return nic_; }
  [[nodiscard]] LockPolicy& policy() { return *policy_; }
  [[nodiscard]] KernelAgent& agent() { return agent_; }

  /// Construct and wire a PinGovernor into this node: every registration
  /// passes its admission control, and vmscan's pressure path invokes its
  /// cooperative-reclaim callback. Replaces a previous governor, if any.
  pinmgr::PinGovernor& enable_governor(
      const pinmgr::GovernorConfig& config = {}) {
    if (governor_) {
      agent_.set_governor(nullptr);
      kernel_.remove_pressure_handler(governor_.get());
    }
    governor_ = std::make_unique<pinmgr::PinGovernor>(kernel_, config);
    governor_->set_policy(sync_);
    governor_->set_fault_engine(faults_);
    agent_.set_governor(governor_.get());
    kernel_.add_pressure_handler(governor_.get());
    return *governor_;
  }
  [[nodiscard]] pinmgr::PinGovernor* governor() { return governor_.get(); }

  [[nodiscard]] sync::SyncPolicy sync() const { return sync_; }

  /// The node's host mutex: the threaded scenario executor holds the mutexes
  /// of every host an event touches (in ascending node-id order) for the
  /// event's duration, which is what keeps VI/CQ state, channels and the
  /// kernel's single-threaded invariants safe without per-structure locks.
  [[nodiscard]] sync::Mutex& mu() { return mu_; }

  /// Arm fault injection on this node's kernel, NIC, kernel agent, and
  /// governor (nullptr disarms).
  void set_fault_engine(fault::FaultEngine* engine) {
    faults_ = engine;
    kernel_.set_fault_engine(engine);
    nic_.set_fault_engine(engine);
    agent_.set_fault_engine(engine);
    if (governor_) governor_->set_fault_engine(engine);
  }

 private:
  [[nodiscard]] static simkern::KernelConfig with_sync(const NodeSpec& spec) {
    simkern::KernelConfig k = spec.kernel;
    k.sync = spec.sync;
    return k;
  }

  sync::SyncPolicy sync_;
  sync::ContentionStats mu_stats_;  ///< host-mutex profile (threaded only)
  sync::Mutex mu_;
  simkern::Kernel kernel_;
  Nic nic_;
  std::unique_ptr<LockPolicy> policy_;
  KernelAgent agent_;
  // Declared after agent_: destroyed first, while the agent the drain
  // callbacks deregister through is still alive.
  std::unique_ptr<pinmgr::PinGovernor> governor_;
  fault::FaultEngine* faults_ = nullptr;
};

/// A set of nodes on one fabric, sharing the virtual clock.
class Cluster {
 public:
  explicit Cluster(CostModel costs = {}) : costs_(costs), fabric_(clock_, costs_) {}

  NodeId add_node(const NodeSpec& spec) {
    nodes_.push_back(std::make_unique<Node>(spec, clock_, costs_));
    const NodeId id = fabric_.attach(nodes_.back()->nic());
    // Disjoint span-ID streams per host: ids from different nodes never
    // collide in a merged trace export (DESIGN.md section 11).
    nodes_.back()->kernel().spans().seed_ids(0x9E3779B97F4A7C15ULL *
                                             (static_cast<std::uint64_t>(id) + 1));
    return id;
  }

  /// Pre-size the node table (cluster-scale scenarios add hundreds).
  void reserve(std::size_t n) { nodes_.reserve(n); }

  /// Add `count` identically-specced nodes; returns the first NodeId (they
  /// are contiguous). The scenario engine's bulk path.
  NodeId add_nodes(const NodeSpec& spec, std::uint32_t count) {
    reserve(nodes_.size() + count);
    NodeId first = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeId id = add_node(spec);
      if (i == 0) first = id;
    }
    return first;
  }

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] Clock& clock() { return clock_; }

  /// Arm one fault engine across the whole cluster: every node's kernel and
  /// NIC plus the fabric wire. Call after all add_node() calls (nodes added
  /// later are not armed); nullptr disarms everywhere.
  void inject_faults(fault::FaultEngine* engine) {
    fabric_.set_fault_engine(engine);
    for (auto& n : nodes_) n->set_fault_engine(engine);
  }
  [[nodiscard]] const CostModel& costs() const { return costs_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  Clock clock_;
  CostModel costs_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace vialock::via
