// memory_handle.h - the user-visible result of VipRegisterMem.
//
// A memory handle names a contiguous TPT entry range covering the registered
// virtual range. Descriptors address buffers as (handle, virtual address);
// the NIC turns that into a TPT offset and translates/checks per page.
#pragma once

#include <cstdint>
#include <optional>

#include "simkern/types.h"
#include "via/tpt.h"

namespace vialock::via {

struct MemHandle {
  TptIndex tpt_base = kInvalidTptIndex;
  std::uint32_t pages = 0;          ///< user pages covered by the region
  std::uint32_t tpt_count = 0;      ///< TPT entries occupied (== pages at
                                    ///< order 0; fewer with superpages)
  simkern::VAddr vaddr = 0;         ///< registered start (may be unaligned)
  std::uint64_t length = 0;
  ProtectionTag tag = kInvalidTag;
  std::uint64_t id = 0;             ///< kernel agent registration id

  [[nodiscard]] bool valid() const { return tpt_base != kInvalidTptIndex; }

  /// Page-aligned start of the region the TPT entries cover.
  [[nodiscard]] simkern::VAddr region_start() const {
    return simkern::page_align_down(vaddr);
  }

  /// Byte offset of `addr` into the TPT entry range, or nullopt when `addr`
  /// (+ len) is outside the registered range.
  [[nodiscard]] std::optional<std::uint64_t> offset_of(simkern::VAddr addr,
                                                       std::uint64_t len) const {
    if (addr < vaddr || addr + len > vaddr + length) return std::nullopt;
    return addr - region_start();
  }
};

}  // namespace vialock::via
