#include "via/lock_policy.h"

#include <cassert>

namespace vialock::via {

using simkern::kPageShift;
using simkern::kPageSize;
using simkern::Pfn;
using simkern::Pid;
using simkern::VAddr;

// ---------------------------------------------------------------------------
// Shared helper
// ---------------------------------------------------------------------------

KStatus LockPolicy::fault_in_and_collect(Pid pid, VAddr addr, std::uint64_t len,
                                         std::vector<Pfn>& pfns) {
  if (!kern_.task_exists(pid)) return KStatus::NoEnt;
  if (len == 0) return KStatus::Inval;
  auto& t = kern_.task(pid);
  const VAddr start = simkern::page_align_down(addr);
  const VAddr end = simkern::page_align_up(addr + len);
  pfns.clear();
  pfns.reserve((end - start) >> kPageShift);
  for (VAddr v = start; v < end; v += kPageSize) {
    const auto* vma = t.mm.vmas.find(v);
    if (!vma) return KStatus::Fault;
    const bool write = has(vma->flags, simkern::VmFlag::Write);
    const KStatus st = kern_.make_present(pid, v, write);
    if (!ok(st)) return st;
    const auto pfn = kern_.resolve(pid, v);  // the forbidden page-table read
    if (!pfn) return KStatus::Fault;
    pfns.push_back(*pfn);
  }
  return KStatus::Ok;
}

// ---------------------------------------------------------------------------
// RefcountLockPolicy (Berkeley-VIA / M-VIA)
// ---------------------------------------------------------------------------

KStatus RefcountLockPolicy::lock(Pid pid, VAddr addr, std::uint64_t len,
                                 LockHandle& out) {
  const KStatus st = fault_in_and_collect(pid, addr, len, out.pfns);
  if (!ok(st)) return st;
  for (const Pfn pfn : out.pfns) kern_.get_page(pfn);
  out.pid = pid;
  out.addr = addr;
  out.len = len;
  out.active = true;
  return KStatus::Ok;
}

void RefcountLockPolicy::unlock(LockHandle& h) {
  if (!h.active) return;
  for (const Pfn pfn : h.pfns) kern_.put_page(pfn);
  h.active = false;
}

// ---------------------------------------------------------------------------
// PageFlagLockPolicy (Giganet cLAN)
// ---------------------------------------------------------------------------

KStatus PageFlagLockPolicy::lock(Pid pid, VAddr addr, std::uint64_t len,
                                 LockHandle& out) {
  const KStatus st = fault_in_and_collect(pid, addr, len, out.pfns);
  if (!ok(st)) return st;
  for (const Pfn pfn : out.pfns) {
    kern_.get_page(pfn);
    auto& pg = kern_.phys().page(pfn);
    // "they do not check if the page is possibly already locked by the
    // kernel" - if it is, we just clobbered the state; count the hazard.
    if (pg.locked()) ++kern_.mutable_stats().io_flag_collisions;
    pg.flags |= simkern::PageFlag::Locked;
    if (opts_.set_reserved) pg.flags |= simkern::PageFlag::Reserved;
  }
  out.pid = pid;
  out.addr = addr;
  out.len = len;
  out.active = true;
  return KStatus::Ok;
}

void PageFlagLockPolicy::unlock(LockHandle& h) {
  if (!h.active) return;
  for (const Pfn pfn : h.pfns) {
    auto& pg = kern_.phys().page(pfn);
    // "the PG_locked flag is reset regardless of the counter state" - even
    // if kernel I/O or another registration still needs it.
    pg.flags &= ~simkern::PageFlag::Locked;
    if (opts_.set_reserved) pg.flags &= ~simkern::PageFlag::Reserved;
    kern_.put_page(pfn);
  }
  h.active = false;
}

// ---------------------------------------------------------------------------
// MlockLockPolicy
// ---------------------------------------------------------------------------

KStatus MlockLockPolicy::do_lock_syscall(Pid pid, VAddr addr, std::uint64_t len,
                                         bool lock) {
  if (opts_.userdma_patch) {
    // User-DMA patch: the uid check moved out of do_mlock, so the driver can
    // call the exported do_mlock() directly.
    return kern_.do_mlock(pid, addr, len, lock);
  }
  // Capability trick: grant CAP_IPC_LOCK around the call, then reclaim it.
  kern_.cap_raise(pid, simkern::Capability::IpcLock);
  const KStatus st = lock ? kern_.sys_mlock(pid, addr, len)
                          : kern_.sys_munlock(pid, addr, len);
  kern_.cap_lower(pid, simkern::Capability::IpcLock);
  return st;
}

KStatus MlockLockPolicy::lock(Pid pid, VAddr addr, std::uint64_t len,
                              LockHandle& out) {
  const RangeKey key{pid, simkern::page_align_down(addr),
                     simkern::page_align_up(addr + len)};
  if (opts_.track_ranges) {
    // The refcount moves under mu_, but the syscall runs outside it: do_mlock
    // takes the range lock and the task mutex, and holding mu_ across that
    // would deadlock against the governor drain path (see lock_policy.h).
    // The 0->1 claimant performs the syscall; concurrent same-range lockers
    // see a nonzero count and ride on it. mlock is idempotent per VMA, so a
    // racing duplicate syscall (count observed 0 twice) would be harmless;
    // per-range lock/unlock ordering is the registration owner's to keep.
    bool first;
    {
      sync::Guard g(mu_);
      first = range_counts_[key]++ == 0;
    }
    if (first) {
      const KStatus st = do_lock_syscall(pid, addr, len, /*lock=*/true);
      if (!ok(st)) {
        sync::Guard g(mu_);
        auto it = range_counts_.find(key);
        if (it != range_counts_.end() && --it->second == 0)
          range_counts_.erase(it);
        return st;
      }
    }
  } else {
    const KStatus st = do_lock_syscall(pid, addr, len, /*lock=*/true);
    if (!ok(st)) return st;
  }
  // mlock made the range resident; still need the physical addresses for the
  // TPT, which only a page-table walk can supply.
  const KStatus st = fault_in_and_collect(pid, addr, len, out.pfns);
  if (!ok(st)) return st;
  out.pid = pid;
  out.addr = addr;
  out.len = len;
  out.active = true;
  return KStatus::Ok;
}

void MlockLockPolicy::unlock(LockHandle& h) {
  if (!h.active) return;
  const RangeKey key{h.pid, simkern::page_align_down(h.addr),
                     simkern::page_align_up(h.addr + h.len)};
  if (opts_.track_ranges) {
    bool last;
    {
      sync::Guard g(mu_);
      auto it = range_counts_.find(key);
      assert(it != range_counts_.end() && it->second > 0);
      last = --it->second == 0;
      if (last) range_counts_.erase(it);
    }
    // Syscall outside mu_ for the same lock-order reason as in lock().
    if (last) (void)do_lock_syscall(h.pid, h.addr, h.len, /*lock=*/false);
  } else {
    // "mlock calls do not nest, i.e. a single unlock operation annuls
    // multiple lock operations on the same address."
    (void)do_lock_syscall(h.pid, h.addr, h.len, /*lock=*/false);
  }
  h.active = false;
}

// ---------------------------------------------------------------------------
// KiobufLockPolicy - the proposed mechanism
// ---------------------------------------------------------------------------

KStatus KiobufLockPolicy::lock(Pid pid, VAddr addr, std::uint64_t len,
                               LockHandle& out) {
  out.kiobuf = kern_.alloc_kiovec();
  const KStatus st = kern_.map_user_kiobuf(pid, out.kiobuf, addr, len);
  if (!ok(st)) return st;
  out.pfns = out.kiobuf.pfns;  // physical pages, supplied BY the kernel
  out.pid = pid;
  out.addr = addr;
  out.len = len;
  out.active = true;
  return KStatus::Ok;
}

void KiobufLockPolicy::unlock(LockHandle& h) {
  if (!h.active) return;
  kern_.unmap_kiobuf(h.kiobuf);
  h.active = false;
}

}  // namespace vialock::via
