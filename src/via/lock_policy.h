// lock_policy.h - the four memory-locking strategies the paper analyses.
//
// A LockPolicy is what the VIA kernel agent calls during VipRegisterMem to
// make a user range DMA-safe and learn its physical pages:
//
//   RefcountLockPolicy  - Berkeley-VIA / M-VIA: "simply increment the
//                         reference counter of the pages". Does NOT lock:
//                         swap_out still unmaps the PTEs (paper section 3.1).
//   PageFlagLockPolicy  - Giganet cLAN: refcount + set PG_locked (and
//                         optionally PG_reserved) "regardless", without
//                         checking prior state, and reset unconditionally on
//                         deregistration. Works, but risky (section 3.1).
//   MlockLockPolicy     - VMA-based do_mlock/sys_mlock with the two privilege
//                         work-arounds and optional driver-side range
//                         tracking; does not nest by itself (section 3.2).
//   KiobufLockPolicy    - the paper's proposal: map_user_kiobuf pins pages
//                         per call, nests naturally, never reads page tables
//                         (section 4).
//
// The policies that model pre-kiobuf drivers read the page tables through
// Kernel::resolve() - the very thing mainline forbids; walks_page_tables()
// reports it so experiment tables can show the conformance column.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "simkern/kernel.h"
#include "sync/mutex.h"
#include "sync/policy.h"
#include "util/status.h"

namespace vialock::via {

/// Per-registration state a policy hands back to the kernel agent.
struct LockHandle {
  simkern::Pid pid = simkern::kInvalidPid;
  simkern::VAddr addr = 0;
  std::uint64_t len = 0;
  std::vector<simkern::Pfn> pfns;  ///< frames at registration time (TPT content)
  simkern::Kiobuf kiobuf;          ///< KiobufLockPolicy state
  bool active = false;
};

class LockPolicy {
 public:
  virtual ~LockPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Pin [addr, addr+len) of `pid` and report its physical pages.
  [[nodiscard]] virtual KStatus lock(simkern::Pid pid, simkern::VAddr addr,
                                     std::uint64_t len, LockHandle& out) = 0;

  /// Undo one lock() call.
  virtual void unlock(LockHandle& h) = 0;

  // --- properties for the comparison tables (paper sections 3 and 4) --------
  /// Reliably prevents page relocation under memory pressure.
  [[nodiscard]] virtual bool reliable() const = 0;
  /// Multiple registrations of a range survive a single deregistration.
  [[nodiscard]] virtual bool supports_nesting() const = 0;
  /// Reads kernel page tables from the driver (mainline non-conformant).
  [[nodiscard]] virtual bool walks_page_tables() const = 0;
  /// Needs root / CAP_IPC_LOCK or a kernel patch.
  [[nodiscard]] virtual bool needs_privilege() const { return false; }

  /// Execution mode: threaded arms the policy's internal mutex (driver-side
  /// bookkeeping such as mlock range refcounts); serial keeps it a no-op.
  /// The kernel's own structures are guarded by the kernel, not here.
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

 protected:
  explicit LockPolicy(simkern::Kernel& kern) : kern_(kern) {}

  /// Shared helper: fault the range in (write access where the VMA allows,
  /// so COW breaks before the NIC learns addresses) and collect the pfns by
  /// reading the page tables.
  [[nodiscard]] KStatus fault_in_and_collect(simkern::Pid pid,
                                             simkern::VAddr addr,
                                             std::uint64_t len,
                                             std::vector<simkern::Pfn>& pfns);

  simkern::Kernel& kern_;
  /// Guards subclass driver-side state only; never held across kernel calls
  /// (do_mlock takes the per-task mutex - holding mu_ there would close a
  /// cycle with the governor drain path, which unlocks through the policy
  /// while reclaim holds task mutexes).
  mutable sync::Mutex mu_;
};

/// Berkeley-VIA / M-VIA: page refcount only. Unreliable by construction.
class RefcountLockPolicy final : public LockPolicy {
 public:
  explicit RefcountLockPolicy(simkern::Kernel& kern) : LockPolicy(kern) {}
  [[nodiscard]] std::string_view name() const override { return "refcount"; }
  [[nodiscard]] KStatus lock(simkern::Pid pid, simkern::VAddr addr,
                             std::uint64_t len, LockHandle& out) override;
  void unlock(LockHandle& h) override;
  [[nodiscard]] bool reliable() const override { return false; }
  [[nodiscard]] bool supports_nesting() const override { return true; }
  [[nodiscard]] bool walks_page_tables() const override { return true; }
};

/// Giganet cLAN style: refcount + PG_locked (+ PG_reserved), unconditionally.
class PageFlagLockPolicy final : public LockPolicy {
 public:
  struct Options {
    bool set_reserved = true;  ///< recent Giganet drivers also set PG_reserved
  };
  explicit PageFlagLockPolicy(simkern::Kernel& kern)
      : PageFlagLockPolicy(kern, Options{}) {}
  PageFlagLockPolicy(simkern::Kernel& kern, Options opts)
      : LockPolicy(kern), opts_(opts) {}
  [[nodiscard]] std::string_view name() const override { return "pageflag"; }
  [[nodiscard]] KStatus lock(simkern::Pid pid, simkern::VAddr addr,
                             std::uint64_t len, LockHandle& out) override;
  void unlock(LockHandle& h) override;
  [[nodiscard]] bool reliable() const override { return true; }
  /// First deregistration strips the flags from every other registration.
  [[nodiscard]] bool supports_nesting() const override { return false; }
  [[nodiscard]] bool walks_page_tables() const override { return true; }

 private:
  Options opts_;
};

/// VMA-based locking via mlock / do_mlock (paper section 3.2).
class MlockLockPolicy final : public LockPolicy {
 public:
  struct Options {
    /// How the CAP_IPC_LOCK check is circumvented:
    ///   true  - the "User-DMA patch" is applied: call do_mlock directly.
    ///   false - cap_raise(CAP_IPC_LOCK) around sys_mlock, cap_lower after.
    bool userdma_patch = false;
    /// Driver-side bookkeeping of how often each exact range is registered
    /// ("the driver must keep track of which address ranges are registered
    /// how often"). Without it, one deregistration unlocks everything.
    bool track_ranges = false;
  };
  explicit MlockLockPolicy(simkern::Kernel& kern)
      : MlockLockPolicy(kern, Options{}) {}
  MlockLockPolicy(simkern::Kernel& kern, Options opts)
      : LockPolicy(kern), opts_(opts) {}
  [[nodiscard]] std::string_view name() const override {
    return opts_.track_ranges ? "mlock+track" : "mlock";
  }
  [[nodiscard]] KStatus lock(simkern::Pid pid, simkern::VAddr addr,
                             std::uint64_t len, LockHandle& out) override;
  void unlock(LockHandle& h) override;
  [[nodiscard]] bool reliable() const override { return true; }
  [[nodiscard]] bool supports_nesting() const override {
    return opts_.track_ranges;  // and even then only for exact range matches
  }
  [[nodiscard]] bool walks_page_tables() const override { return true; }
  [[nodiscard]] bool needs_privilege() const override { return true; }

 private:
  struct RangeKey {
    simkern::Pid pid;
    simkern::VAddr start;
    simkern::VAddr end;
    auto operator<=>(const RangeKey&) const = default;
  };

  [[nodiscard]] KStatus do_lock_syscall(simkern::Pid pid, simkern::VAddr addr,
                                        std::uint64_t len, bool lock);

  Options opts_;
  std::map<RangeKey, std::uint32_t> range_counts_;
};

/// The paper's proposal: kiobuf-based locking.
class KiobufLockPolicy final : public LockPolicy {
 public:
  explicit KiobufLockPolicy(simkern::Kernel& kern) : LockPolicy(kern) {}
  [[nodiscard]] std::string_view name() const override { return "kiobuf"; }
  [[nodiscard]] KStatus lock(simkern::Pid pid, simkern::VAddr addr,
                             std::uint64_t len, LockHandle& out) override;
  void unlock(LockHandle& h) override;
  [[nodiscard]] bool reliable() const override { return true; }
  [[nodiscard]] bool supports_nesting() const override { return true; }
  [[nodiscard]] bool walks_page_tables() const override { return false; }
};

}  // namespace vialock::via
