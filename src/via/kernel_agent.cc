#include "via/kernel_agent.h"

#include <cassert>

namespace vialock::via {

ProtectionTag KernelAgent::create_ptag(simkern::Pid pid) {
  kern_.clock().advance(kern_.costs().syscall);
  ++kern_.mutable_stats().syscalls;
  if (!kern_.task_exists(pid)) return kInvalidTag;
  return next_tag_++;
}

std::optional<simkern::VAddr> KernelAgent::map_doorbell(simkern::Pid pid,
                                                        ViId vi) {
  if (!nic_.vi_exists(vi)) return std::nullopt;
  // Doorbell register pages live in the reserved low frames (the platform's
  // device aperture); frame 0 stays untouchable.
  const simkern::Pfn frame = 1 + vi;
  if (frame >= kern_.config().reserved_low) return std::nullopt;
  return kern_.map_device_page(
      pid, frame, simkern::VmFlag::Read | simkern::VmFlag::Write);
}

KStatus KernelAgent::register_mem(simkern::Pid pid, simkern::VAddr addr,
                                  std::uint64_t len, ProtectionTag tag,
                                  MemHandle& out, RegisterOptions opts) {
  kern_.clock().advance(kern_.costs().syscall);  // the registration ioctl
  ++kern_.mutable_stats().syscalls;
  if (tag == kInvalidTag || len == 0) return KStatus::Inval;

  Registration reg;
  reg.opts = opts;
  const KStatus st = policy_.lock(pid, addr, len, reg.lock);
  if (!ok(st)) {
    ++stats_.lock_failures;
    return st;
  }

  const auto pages = static_cast<std::uint32_t>(reg.lock.pfns.size());
  const TptIndex base = nic_.tpt().alloc(pages);
  if (base == kInvalidTptIndex) {
    policy_.unlock(reg.lock);
    ++stats_.tpt_full;
    return KStatus::NoSpc;
  }
  for (std::uint32_t i = 0; i < pages; ++i) {
    nic_.program_tpt(base + i, TptEntry{.valid = true,
                                        .pfn = reg.lock.pfns[i],
                                        .tag = tag,
                                        .rdma_write_enable = opts.rdma_write,
                                        .rdma_read_enable = opts.rdma_read});
  }

  out = MemHandle{.tpt_base = base,
                  .pages = pages,
                  .vaddr = addr,
                  .length = len,
                  .tag = tag,
                  .id = next_reg_id_++};
  reg.handle = out;
  regs_.emplace(out.id, std::move(reg));
  ++stats_.registrations;
  stats_.pages_registered += pages;
  kern_.trace().record(kern_.clock().now(),
                       vialock::TraceEvent::RegionRegistered, pid, addr,
                       base);
  return KStatus::Ok;
}

KStatus KernelAgent::deregister_mem(const MemHandle& handle) {
  kern_.clock().advance(kern_.costs().syscall);
  ++kern_.mutable_stats().syscalls;
  auto it = regs_.find(handle.id);
  if (it == regs_.end()) return KStatus::NoEnt;
  Registration& reg = it->second;
  nic_.tpt().release(reg.handle.tpt_base, reg.handle.pages);
  policy_.unlock(reg.lock);
  regs_.erase(it);
  ++stats_.deregistrations;
  kern_.trace().record(kern_.clock().now(),
                       vialock::TraceEvent::RegionDeregistered, 0,
                       handle.vaddr, handle.tpt_base);
  return KStatus::Ok;
}

KStatus KernelAgent::refresh_tpt(const MemHandle& handle) {
  kern_.clock().advance(kern_.costs().syscall);
  ++kern_.mutable_stats().syscalls;
  auto it = regs_.find(handle.id);
  if (it == regs_.end()) return KStatus::NoEnt;
  Registration& reg = it->second;

  // Semantically a re-registration that keeps its TPT slots: drop the old
  // pin and take a fresh one, so the policy's reference accounting follows
  // the pages wherever they live now.
  const simkern::Pid pid = reg.lock.pid;
  const simkern::VAddr addr = reg.lock.addr;
  const std::uint64_t len = reg.lock.len;
  policy_.unlock(reg.lock);
  reg.lock = LockHandle{};
  const KStatus st = policy_.lock(pid, addr, len, reg.lock);
  if (!ok(st)) return st;
  if (reg.lock.pfns.size() != reg.handle.pages) return KStatus::Fault;

  for (std::uint32_t i = 0; i < reg.handle.pages; ++i) {
    TptEntry e = nic_.tpt().get(reg.handle.tpt_base + i);
    e.pfn = reg.lock.pfns[i];
    nic_.program_tpt(reg.handle.tpt_base + i, e);
  }
  return KStatus::Ok;
}

const LockHandle* KernelAgent::lock_handle(std::uint64_t reg_id) const {
  auto it = regs_.find(reg_id);
  return it == regs_.end() ? nullptr : &it->second.lock;
}

}  // namespace vialock::via
