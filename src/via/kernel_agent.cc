#include "via/kernel_agent.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <sstream>
#include <vector>

namespace vialock::via {

std::string agent_status(const AgentStats& s) {
  std::ostringstream os;
  os << "registrations " << s.registrations.load() << "\n"
     << "deregistrations " << s.deregistrations.load() << "\n"
     << "pages_registered " << s.pages_registered.load() << "\n"
     << "lock_failures " << s.lock_failures.load() << "\n"
     << "tpt_full " << s.tpt_full.load() << "\n"
     << "admission_rejects " << s.admission_rejects.load() << "\n"
     << "lazy_deregs " << s.lazy_deregs.load() << "\n"
     << "refresh_failures " << s.refresh_failures.load() << "\n"
     << "tpt_entries_programmed " << s.tpt_entries_programmed.load() << "\n"
     << "refresh_splits " << s.refresh_splits.load() << "\n";
  return os.str();
}

KernelAgent::KernelAgent(simkern::Kernel& kern, Nic& nic, LockPolicy& policy)
    : kern_(kern),
      nic_(nic),
      policy_(policy),
      register_ns_(kern.metrics().histogram("via.agent.register_ns")),
      dereg_ns_(kern.metrics().histogram("via.agent.dereg_ns")),
      refresh_ns_(kern.metrics().histogram("via.agent.refresh_ns")),
      tpt_alloc_pages_(kern.metrics().histogram("via.tpt.alloc_pages")) {
  kern_.metrics().register_source(
      "via.agent", this, [this](obs::MetricSink& s) {
        s.counter("registrations", stats_.registrations);
        s.counter("deregistrations", stats_.deregistrations);
        s.counter("pages_registered", stats_.pages_registered);
        s.counter("lock_failures", stats_.lock_failures);
        s.counter("tpt_full", stats_.tpt_full);
        s.counter("admission_rejects", stats_.admission_rejects);
        s.counter("lazy_deregs", stats_.lazy_deregs);
        s.counter("refresh_failures", stats_.refresh_failures);
        s.counter("tpt_entries_programmed", stats_.tpt_entries_programmed);
        s.counter("refresh_splits", stats_.refresh_splits);
        s.gauge("live_registrations", regs_.size());
      });
  kern_.procfs().mount("via/agent", this,
                       [this] { return agent_status(stats_); });
}

KernelAgent::~KernelAgent() {
  kern_.metrics().unregister_source("via.agent", this);
  kern_.procfs().unmount("via/agent", this);
}

ProtectionTag KernelAgent::create_ptag(simkern::Pid pid) {
  kern_.clock().advance(kern_.costs().syscall);
  ++kern_.mutable_stats().syscalls;
  if (!kern_.task_exists(pid)) return kInvalidTag;
  sync::Guard g(mu_);
  return next_tag_++;
}

std::optional<simkern::VAddr> KernelAgent::map_doorbell(simkern::Pid pid,
                                                        ViId vi) {
  if (!nic_.vi_exists(vi)) return std::nullopt;
  // Doorbell register pages live in the reserved low frames (the platform's
  // device aperture); frame 0 stays untouchable.
  const simkern::Pfn frame = 1 + vi;
  if (frame >= kern_.config().reserved_low) return std::nullopt;
  return kern_.map_device_page(
      pid, frame, simkern::VmFlag::Read | simkern::VmFlag::Write);
}

KStatus KernelAgent::register_mem(simkern::Pid pid, simkern::VAddr addr,
                                  std::uint64_t len, ProtectionTag tag,
                                  MemHandle& out, RegisterOptions opts) {
  const obs::ScopedSpan span(kern_.spans(), "via.register_mem");
  const VirtualStopwatch sw(kern_.clock());
  const auto charge = [&](KStatus st) {
    register_ns_.add(sw.elapsed());
    return st;
  };
  kern_.clock().advance(kern_.costs().syscall);  // the registration ioctl
  ++kern_.mutable_stats().syscalls;
  if (tag == kInvalidTag || len == 0) return charge(KStatus::Inval);

  Registration reg;
  reg.opts = opts;
  const KStatus st = policy_.lock(pid, addr, len, reg.lock);
  if (!ok(st)) {
    ++stats_.lock_failures;
    return charge(st);
  }

  if (governor_) {
    const KStatus gst = governor_->charge(pid, reg.lock.pfns);
    if (!ok(gst)) {
      policy_.unlock(reg.lock);
      ++stats_.admission_rejects;
      return charge(gst);
    }
  }

  const auto pages = static_cast<std::uint32_t>(reg.lock.pfns.size());
  const std::vector<SuperpageRun> runs = decompose_superpages(
      reg.lock.pfns, nic_.config().max_superpage_order);
  const auto entries = static_cast<std::uint32_t>(runs.size());
  const TptIndex base = tpt_alloc(entries);
  if (base == kInvalidTptIndex) {
    // Roll back everything claimed so far: governor charge, then the pin.
    if (governor_) governor_->uncharge(pid, reg.lock.pfns);
    policy_.unlock(reg.lock);
    ++stats_.tpt_full;
    return charge(KStatus::NoSpc);
  }
  tpt_alloc_pages_.add(entries);
  program_runs(base, runs, reg.lock.pfns, tag, opts);

  {
    sync::Guard g(mu_);
    out = MemHandle{.tpt_base = base,
                    .pages = pages,
                    .tpt_count = entries,
                    .vaddr = addr,
                    .length = len,
                    .tag = tag,
                    .id = next_reg_id_++};
    reg.handle = out;
    regs_.emplace(out.id, std::move(reg));
  }
  ++stats_.registrations;
  stats_.pages_registered += pages;
  kern_.trace().record(kern_.clock().now(),
                       vialock::TraceEvent::RegionRegistered, pid, addr,
                       base);
  return charge(KStatus::Ok);
}

KStatus KernelAgent::deregister_mem(const MemHandle& handle) {
  const obs::ScopedSpan span(kern_.spans(), "via.deregister_mem");
  const VirtualStopwatch sw(kern_.clock());
  const auto charge = [&](KStatus st) {
    dereg_ns_.add(sw.elapsed());
    return st;
  };
  std::shared_ptr<Registration> reg;
  {
    sync::Guard g(mu_);
    auto it = regs_.find(handle.id);
    if (it != regs_.end()) {
      reg = std::make_shared<Registration>(std::move(it->second));
      regs_.erase(it);
    }
  }
  if (!reg) {
    kern_.clock().advance(kern_.costs().syscall);  // the failed ioctl
    ++kern_.mutable_stats().syscalls;
    return charge(KStatus::NoEnt);
  }

  if (governor_ && governor_->lazy_enabled()) {
    // Defer: append to the governor's user-level dereg ring (no kernel
    // entry); the TPT slots and pins are released at the batched drain.
    pinmgr::PendingDereg d;
    d.pid = reg->lock.pid;
    d.reg_id = reg->handle.id;
    d.pages = reg->handle.pages;
    d.release = [this, reg] { return finish_dereg(*reg); };
    if (governor_->defer_dereg(std::move(d))) {
      ++stats_.lazy_deregs;
      return charge(KStatus::Ok);
    }
  }

  kern_.clock().advance(kern_.costs().syscall);
  ++kern_.mutable_stats().syscalls;
  finish_dereg(*reg);
  return charge(KStatus::Ok);
}

TptIndex KernelAgent::tpt_alloc(std::uint32_t count) {
  if (faults_) {
    if (const auto d = faults_->check(fault::FaultSite::TptAlloc);
        d && (d->action == fault::FaultAction::Fail ||
              d->action == fault::FaultAction::Drop)) {
      return kInvalidTptIndex;
    }
  }
  TptIndex base = nic_.tpt().alloc(count);
  if (base == kInvalidTptIndex && governor_ &&
      governor_->lazy_queue_depth() > 0) {
    // Deferred deregistrations still hold TPT slots; drain and retry once.
    (void)governor_->flush();
    base = nic_.tpt().alloc(count);
  }
  return base;
}

void KernelAgent::program_runs(TptIndex base, std::span<const SuperpageRun> runs,
                               std::span<const simkern::Pfn> pfns,
                               ProtectionTag tag, RegisterOptions opts) {
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SuperpageRun& r = runs[i];
    nic_.program_tpt(base + static_cast<TptIndex>(i),
                     TptEntry{.valid = true,
                              .pfn = pfns[r.page_start],
                              .tag = tag,
                              .rdma_write_enable = opts.rdma_write,
                              .rdma_read_enable = opts.rdma_read,
                              .page_start = r.page_start,
                              .order = r.order});
  }
  stats_.tpt_entries_programmed += runs.size();
}

std::uint32_t KernelAgent::finish_dereg(Registration& reg) {
  const std::uint32_t pages = reg.handle.pages;
  nic_.tpt().release(reg.handle.tpt_base, reg.handle.tpt_count);
  if (governor_) governor_->uncharge(reg.lock.pid, reg.lock.pfns);
  policy_.unlock(reg.lock);
  ++stats_.deregistrations;
  kern_.trace().record(kern_.clock().now(),
                       vialock::TraceEvent::RegionDeregistered, 0,
                       reg.handle.vaddr, reg.handle.tpt_base);
  return pages;
}

void KernelAgent::release_tenant(simkern::Pid pid) {
  // Complete the tenant's deferred deregistrations before walking the live
  // set (an epoch barrier - correctness-critical point).
  if (governor_) (void)governor_->flush();
  std::vector<std::uint64_t> ids;
  {
    sync::Guard g(mu_);
    for (const auto& [id, reg] : regs_) {
      if (reg.lock.pid == pid) ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());  // regs_ is unordered; keep runs identical
  for (const std::uint64_t id : ids) {
    kern_.clock().advance(kern_.costs().syscall);
    ++kern_.mutable_stats().syscalls;
    Registration reg;
    {
      sync::Guard g(mu_);
      auto it = regs_.find(id);
      if (it == regs_.end()) continue;  // raced with a concurrent dereg
      reg = std::move(it->second);
      regs_.erase(it);
    }
    finish_dereg(reg);
  }
  if (governor_) governor_->remove_tenant(pid);
}

KStatus KernelAgent::refresh_tpt(MemHandle& handle) {
  const obs::ScopedSpan span(kern_.spans(), "via.refresh_tpt");
  const VirtualStopwatch sw(kern_.clock());
  const auto charge = [&](KStatus st) {
    refresh_ns_.add(sw.elapsed());
    return st;
  };
  kern_.clock().advance(kern_.costs().syscall);
  ++kern_.mutable_stats().syscalls;
  Registration* regp = nullptr;
  {
    sync::Guard g(mu_);
    auto it = regs_.find(handle.id);
    if (it != regs_.end()) regp = &it->second;
  }
  if (!regp) return charge(KStatus::NoEnt);
  // The element reference survives concurrent rehashes; callers must not
  // deregister a handle while a refresh of it is in flight.
  Registration& reg = *regp;

  // Semantically a re-registration that keeps its TPT slots: drop the old
  // pin and take a fresh one, so the policy's reference accounting follows
  // the pages wherever they live now.
  const simkern::Pid pid = reg.lock.pid;
  const simkern::VAddr addr = reg.lock.addr;
  const std::uint64_t len = reg.lock.len;
  if (governor_) governor_->uncharge(pid, reg.lock.pfns);
  policy_.unlock(reg.lock);
  reg.lock = LockHandle{};

  // Any failure past this point must tear the registration down completely:
  // the old pin is gone, so keeping the entry alive would leave TPT slots
  // programmed with stale pfns and a LockHandle that pins nothing - the TPT
  // would disagree with both the MMU and the pin accounting.
  const auto teardown = [&] {
    policy_.unlock(reg.lock);  // no-op on an inactive handle
    nic_.tpt().release(reg.handle.tpt_base, reg.handle.tpt_count);
    {
      sync::Guard g(mu_);
      regs_.erase(handle.id);  // by id: iterators don't survive rehashes
    }
    ++stats_.refresh_failures;
    kern_.trace().record(kern_.clock().now(),
                         vialock::TraceEvent::RegionDeregistered, pid, addr,
                         handle.tpt_base);
  };

  const KStatus st = policy_.lock(pid, addr, len, reg.lock);
  if (!ok(st)) {
    // Seed bug: this returned with the dead registration still in regs_ -
    // an empty LockHandle, leaked TPT slots, stale pfns live in the NIC.
    teardown();
    return charge(st);
  }
  if (reg.lock.pfns.size() != reg.handle.pages) {
    // Seed bug: returned Fault while keeping the fresh (uncharged) pin and
    // the stale TPT programming.
    teardown();
    return charge(KStatus::Fault);
  }
  if (governor_) {
    // Re-admit the refreshed frames. Same tenant, same page count: this can
    // only fail through injected admission races; surface that cleanly by
    // tearing the registration down rather than keeping an uncharged pin.
    const KStatus gst = governor_->charge(pid, reg.lock.pfns);
    if (!ok(gst)) {
      teardown();
      return charge(gst);
    }
  }

  const std::vector<SuperpageRun> runs = decompose_superpages(
      reg.lock.pfns, nic_.config().max_superpage_order);
  if (runs.size() == reg.handle.tpt_count) {
    // Same shape: reprogram the existing range in place.
    program_runs(reg.handle.tpt_base, runs, reg.lock.pfns, reg.handle.tag,
                 reg.opts);
  } else {
    // The swapper relocated frames inside a superpage run, splitting (or
    // re-merging) the decomposition. The entry count changed, so the old
    // range no longer fits: claim a fresh range, program it, then release
    // the old one. A failed claim must roll back everything acquired in
    // this refresh - the new pin and the governor charge - on top of the
    // usual teardown, or pinned_frames()/quota accounting leak.
    ++stats_.refresh_splits;
    const auto entries = static_cast<std::uint32_t>(runs.size());
    const TptIndex nbase = tpt_alloc(entries);
    if (nbase == kInvalidTptIndex) {
      if (governor_) governor_->uncharge(pid, reg.lock.pfns);
      ++stats_.tpt_full;
      teardown();
      return charge(KStatus::NoSpc);
    }
    tpt_alloc_pages_.add(entries);
    program_runs(nbase, runs, reg.lock.pfns, reg.handle.tag, reg.opts);
    nic_.tpt().release(reg.handle.tpt_base, reg.handle.tpt_count);
    reg.handle.tpt_base = nbase;
    reg.handle.tpt_count = entries;
  }
  handle = reg.handle;
  return charge(KStatus::Ok);
}

const LockHandle* KernelAgent::lock_handle(std::uint64_t reg_id) const {
  sync::Guard g(mu_);
  auto it = regs_.find(reg_id);
  return it == regs_.end() ? nullptr : &it->second.lock;
}

}  // namespace vialock::via
