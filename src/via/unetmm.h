// unetmm.h - the U-Net/MM design point, implemented for comparison.
//
// The paper's introduction contrasts VIA's mandatory pinning with its
// predecessor U-Net/MM, which "allows communication memory to be swapped out
// by maintaining a Translation Lookaside Buffer on the NIC, which is kept
// consistent with the kernel page tables", noting that VIA's pinning "saves
// the expensive page-in operations during communication".
//
// UnetMmAgent registers memory WITHOUT pinning: the TPT acts as the NIC TLB.
// An MmuNotifier subscription invalidates TPT entries whenever the kernel
// tears a translation down (swap-out, COW, munmap). When the NIC then
// touches an invalid entry, the access faults to the host: the driver pages
// the memory back in, reprograms the entry and retries - correct, but paying
// an interrupt plus (possibly) a disk read on the data path, which is
// exactly the cost VIA's pinning avoids. Experiment E11 quantifies the trade.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "simkern/kernel.h"
#include "util/status.h"
#include "via/nic.h"

namespace vialock::via {

struct UnetMmStats {
  std::uint64_t registrations = 0;
  std::uint64_t invalidations = 0;   ///< TPT entries shot down by the kernel
  std::uint64_t nic_faults = 0;      ///< DMA accesses that hit invalid entries
  std::uint64_t repair_pageins = 0;  ///< repairs that required swap-ins
};

class UnetMmAgent final : public simkern::MmuNotifier {
 public:
  UnetMmAgent(simkern::Kernel& kern, Nic& nic);
  ~UnetMmAgent() override;

  UnetMmAgent(const UnetMmAgent&) = delete;
  UnetMmAgent& operator=(const UnetMmAgent&) = delete;

  [[nodiscard]] ProtectionTag create_ptag(simkern::Pid pid);

  /// Register without pinning: fault the range in, fill the TPT (the "TLB").
  [[nodiscard]] KStatus register_mem(simkern::Pid pid, simkern::VAddr addr,
                                     std::uint64_t len, ProtectionTag tag,
                                     MemHandle& out);
  [[nodiscard]] KStatus deregister_mem(const MemHandle& handle);

  /// NIC-side DMA with the fault-and-repair path: on an invalid TPT entry
  /// the "NIC" interrupts, the driver pages in + reprograms, and the access
  /// retries. These wrap Nic::dma_*_local the way the U-Net/MM firmware
  /// would.
  [[nodiscard]] KStatus dma_write(const MemHandle& handle, simkern::VAddr addr,
                                  std::span<const std::byte> data);
  [[nodiscard]] KStatus dma_read(const MemHandle& handle, simkern::VAddr addr,
                                 std::span<std::byte> out);

  // MmuNotifier:
  void on_invalidate(simkern::Pid pid, simkern::VAddr vaddr,
                     simkern::Pfn old_pfn) override;

  [[nodiscard]] const UnetMmStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_registrations() const { return regs_.size(); }

 private:
  struct Registration {
    MemHandle handle;
    simkern::Pid pid;
  };

  /// Re-validate the invalid TPT entries covering [addr, addr+len) (page-in
  /// + reprogram), charging the NIC-fault cost once. Per-access repair, like
  /// a real fault handler - repairing the whole registration at once would
  /// thrash under the very pressure that caused the fault.
  [[nodiscard]] KStatus repair(Registration& reg, simkern::VAddr addr,
                               std::uint64_t len);

  simkern::Kernel& kern_;
  Nic& nic_;
  UnetMmStats stats_;
  std::unordered_map<std::uint64_t, Registration> regs_;
  std::uint64_t next_reg_id_ = 1;
  ProtectionTag next_tag_ = 1;
};

}  // namespace vialock::via
