// kernel_agent.h - the VI Kernel Agent: the device driver half of VIA.
//
// Performs the privileged operations of the VI Architecture - protection-tag
// creation and memory registration/deregistration - on behalf of user
// processes (each entry models an ioctl, so it charges syscall cost). Memory
// registration is where the paper lives: the agent asks its LockPolicy to pin
// the user range and learn its physical pages, then programs the NIC's TPT
// over PCI. Whether those TPT entries stay truthful under memory pressure is
// entirely the policy's doing.
//
// When a PinGovernor is attached (set_governor), every registration passes
// its admission control (per-tenant quota + host ceiling, frame-deduplicated
// accounting) and deregistrations may be deferred to its lazy batch queue.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "fault/fault.h"
#include "pinmgr/pin_governor.h"
#include "simkern/kernel.h"
#include "sync/mutex.h"
#include "sync/policy.h"
#include "sync/relaxed.h"
#include "util/status.h"
#include "via/lock_policy.h"
#include "via/nic.h"
#include "via/superpage.h"

namespace vialock::via {

// Relaxed-atomic counters: several real threads can drive one agent in the
// E26 registration microbench; serial behaviour is unchanged.
struct AgentStats {
  sync::Relaxed registrations;
  sync::Relaxed deregistrations;
  sync::Relaxed pages_registered;
  sync::Relaxed lock_failures;
  sync::Relaxed tpt_full;
  sync::Relaxed admission_rejects;  ///< governor refused a registration
  sync::Relaxed lazy_deregs;        ///< deregs deferred to the governor
  sync::Relaxed refresh_failures;   ///< refresh_tpt torn a registration
                                    ///< down on a failed re-pin
  sync::Relaxed tpt_entries_programmed;  ///< entries written (== pages
                                         ///< at order 0; fewer with
                                         ///< superpages)
  sync::Relaxed refresh_splits;     ///< refresh reallocated the TPT range
                                    ///< because relocation changed the
                                    ///< superpage decomposition
};

/// /proc/via/agent: the agent's registration counters as "key value" lines.
[[nodiscard]] std::string agent_status(const AgentStats& stats);

class KernelAgent {
 public:
  /// Attributes of a registration. Prefer the named factories over brace
  /// initialisation - positional bools read as line noise at call sites.
  struct RegisterOptions {
    bool rdma_write = true;
    bool rdma_read = true;

    /// The default: remote writes and reads both enabled.
    [[nodiscard]] static constexpr RegisterOptions rdma_enabled() {
      return {true, true};
    }
    /// Send/receive only - the region refuses all RDMA access.
    [[nodiscard]] static constexpr RegisterOptions send_recv_only() {
      return {false, false};
    }
    /// Inbound RDMA writes only (a receive window).
    [[nodiscard]] static constexpr RegisterOptions rdma_write_only() {
      return {true, false};
    }
    /// Outbound RDMA reads only (an exported source buffer).
    [[nodiscard]] static constexpr RegisterOptions rdma_read_only() {
      return {false, true};
    }
  };

  KernelAgent(simkern::Kernel& kern, Nic& nic, LockPolicy& policy);
  ~KernelAgent();

  KernelAgent(const KernelAgent&) = delete;
  KernelAgent& operator=(const KernelAgent&) = delete;

  /// VipCreatePtag: mint a protection tag for `pid`.
  [[nodiscard]] ProtectionTag create_ptag(simkern::Pid pid);

  /// Map the doorbell page of `vi` into `pid`'s address space as a VM_IO
  /// mapping. "The size of a doorbell is equal to the page size of the host
  /// computer and so the handling which process may access which doorbell
  /// can be simply realized by the host's virtual memory management system"
  /// (paper section on VIA protection). One page per VI, carved out of the
  /// platform's reserved device-register frames.
  [[nodiscard]] std::optional<simkern::VAddr> map_doorbell(simkern::Pid pid,
                                                           ViId vi);

  /// VipRegisterMem: pin [addr, addr+len) and enter it into the TPT.
  [[nodiscard]] KStatus register_mem(simkern::Pid pid, simkern::VAddr addr,
                                     std::uint64_t len, ProtectionTag tag,
                                     MemHandle& out,
                                     RegisterOptions opts =
                                         RegisterOptions::rdma_enabled());

  /// VipDeregisterMem: release TPT entries and undo the pin.
  [[nodiscard]] KStatus deregister_mem(const MemHandle& handle);

  /// Refresh the TPT entries of a live registration from the *current* page
  /// tables. This is the "TLB-consistency" repair a U-Net/MM-style system
  /// would do; exposed so experiments can measure what re-registration costs.
  ///
  /// Failure contract: refresh is a re-registration, so if the re-pin
  /// cannot be completed (lock failure, page-count mismatch, governor
  /// rejection, TPT alloc failure on a superpage split) the registration is
  /// torn down entirely - TPT slots released, nothing left pinned or
  /// charged, the handle dead (stats().refresh_failures counts it). A
  /// failed refresh never leaves a half-alive registration whose TPT
  /// entries disagree with the pin accounting - the paper's section 3.2
  /// inconsistency class.
  ///
  /// With superpages, relocation of one frame inside a superpage run
  /// changes the decomposition: refresh then allocates a fresh TPT range
  /// for the new (split) layout, programs it, and releases the old range
  /// (stats().refresh_splits). The caller's handle is updated in place -
  /// tpt_base/tpt_count may change on success and the handle is dead after
  /// a failure.
  [[nodiscard]] KStatus refresh_tpt(MemHandle& handle);

  /// Route registrations through `governor` (nullptr detaches). The governor
  /// must outlive the agent or be detached first.
  void set_governor(pinmgr::PinGovernor* governor) { governor_ = governor; }
  [[nodiscard]] pinmgr::PinGovernor* governor() { return governor_; }

  /// Attach the chaos engine (nullptr detaches): arms the TptAlloc site so
  /// table-claim failures are injectable mid-registration and mid-refresh.
  void set_fault_engine(fault::FaultEngine* engine) { faults_ = engine; }

  /// Execution mode: threaded arms the agent's registration-table mutex and
  /// forwards the policy to the lock policy underneath; serial keeps every
  /// lock a no-op branch.
  void set_policy(sync::SyncPolicy p) {
    mu_.set_policy(p);
    policy_.set_policy(p);
  }

  /// Tenant teardown: flush the governor's deferred deregistrations, then
  /// eagerly deregister every live registration of `pid` and drop its
  /// governor accounting - nothing may leak when a tenant exits.
  void release_tenant(simkern::Pid pid);

  [[nodiscard]] LockPolicy& policy() { return policy_; }
  [[nodiscard]] const AgentStats& stats() const { return stats_; }
  [[nodiscard]] Nic& nic() { return nic_; }
  [[nodiscard]] simkern::Kernel& kern() { return kern_; }

  /// The lock handle of a live registration (experiment introspection). The
  /// pointer stays valid until that registration is deregistered.
  [[nodiscard]] const LockHandle* lock_handle(std::uint64_t reg_id) const;
  [[nodiscard]] std::size_t live_registrations() const {
    sync::Guard g(mu_);
    return regs_.size();
  }

 private:
  struct Registration {
    MemHandle handle;
    LockHandle lock;
    RegisterOptions opts;
  };

  /// TPT release + uncharge + unlock + stats; returns pages released.
  std::uint32_t finish_dereg(Registration& reg);

  /// Tpt::alloc with the injectable TptAlloc fault site in front and one
  /// lazy-queue flush retry behind (deferred deregs still hold slots).
  [[nodiscard]] TptIndex tpt_alloc(std::uint32_t count);

  /// Program `runs` of `pfns` into entries [base, base+runs.size()).
  void program_runs(TptIndex base, std::span<const SuperpageRun> runs,
                    std::span<const simkern::Pfn> pfns, ProtectionTag tag,
                    RegisterOptions opts);

  simkern::Kernel& kern_;
  Nic& nic_;
  LockPolicy& policy_;
  pinmgr::PinGovernor* governor_ = nullptr;
  fault::FaultEngine* faults_ = nullptr;
  AgentStats stats_;
  // Ioctl latency histograms, owned by the kernel's metric registry.
  obs::Histogram& register_ns_;
  obs::Histogram& dereg_ns_;
  obs::Histogram& refresh_ns_;
  obs::Histogram& tpt_alloc_pages_;
  /// Guards regs_ / next_reg_id_ / next_tag_ ONLY, and only briefly: never
  /// held across policy, governor or kernel calls (the governor's drain path
  /// re-enters the agent through finish_dereg, and the policy takes kernel
  /// locks - holding mu_ across either would close a cycle).
  mutable sync::Mutex mu_;
  std::unordered_map<std::uint64_t, Registration> regs_;
  std::uint64_t next_reg_id_ = 1;
  ProtectionTag next_tag_ = 1;
};

}  // namespace vialock::via
