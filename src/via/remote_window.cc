#include "via/remote_window.h"

#include <cassert>
#include <cstring>

namespace vialock::via {

using simkern::kPageSize;

std::optional<RemoteWindow> RemoteWindow::import(Fabric& fabric,
                                                 NodeId local_node,
                                                 NodeId remote_node,
                                                 const MemHandle& exported) {
  if (local_node >= fabric.num_nodes() || remote_node >= fabric.num_nodes())
    return std::nullopt;
  if (!exported.valid() || exported.length == 0) return std::nullopt;
  // Import = set up the downstream translation; validated against the
  // exporter's live TPT state (first page suffices: contiguous range).
  const Tpt& tpt = fabric.nic(remote_node).tpt();
  const auto base_off = exported.offset_of(exported.vaddr, 1);
  if (!base_off) return std::nullopt;
  if (!tpt.translate(exported.tpt_base, exported.tpt_count, *base_off,
                     exported.tag, false, false)) {
    return std::nullopt;
  }
  fabric.clock().advance(fabric.costs().syscall);  // the mapping ioctl
  return RemoteWindow(fabric, local_node, remote_node, exported);
}

KStatus RemoteWindow::access(std::uint64_t offset, std::span<std::byte> rd,
                             std::span<const std::byte> wr) {
  const std::uint64_t len = rd.empty() ? wr.size() : rd.size();
  if (len == 0) return KStatus::Ok;
  if (offset + len > handle_.length) return KStatus::Inval;
  Nic& remote_nic = fabric_->nic(remote_);
  const auto base_off = handle_.offset_of(handle_.vaddr + offset, len);
  if (!base_off) return KStatus::Fault;

  std::uint64_t done = 0;
  while (done < len) {
    const auto tr = remote_nic.tpt().translate(
        handle_.tpt_base, handle_.tpt_count, *base_off + done, handle_.tag,
        /*rdma_write=*/false, /*rdma_read=*/false);
    if (!tr) return KStatus::Fault;  // deregistered or protection change
    const auto chunk =
        std::min<std::uint64_t>(len - done, kPageSize - tr->page_offset);
    auto frame = remote_nic.host().phys().frame(tr->pfn);
    if (!wr.empty()) {
      std::memcpy(frame.data() + tr->page_offset, wr.data() + done, chunk);
    } else {
      std::memcpy(rd.data() + done, frame.data() + tr->page_offset, chunk);
    }
    done += chunk;
  }
  const CostModel& c = fabric_->costs();
  fabric_->clock().advance(wr.empty()
                               ? c.pio_read_rtt + len * c.pio_per_byte
                               : c.pio_store_latency + len * c.pio_per_byte);
  return KStatus::Ok;
}

KStatus RemoteWindow::store(std::uint64_t offset,
                            std::span<const std::byte> data) {
  return access(offset, {}, data);
}

KStatus RemoteWindow::load(std::uint64_t offset, std::span<std::byte> out) {
  return access(offset, out, {});
}

}  // namespace vialock::via
