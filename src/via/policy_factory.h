// policy_factory.h - enumerate and construct the locking policies by name,
// so experiments can sweep over all of them uniformly.
#pragma once

#include <array>
#include <memory>
#include <string_view>

#include "sync/policy.h"
#include "via/lock_policy.h"

namespace vialock::via {

enum class PolicyKind : std::uint8_t {
  Refcount,      ///< Berkeley-VIA / M-VIA
  PageFlag,      ///< Giganet cLAN
  Mlock,         ///< VMA-based, no driver-side range tracking
  MlockTracked,  ///< VMA-based with driver-side range refcounting
  Kiobuf,        ///< the paper's proposal
};

inline constexpr std::array<PolicyKind, 5> kAllPolicies = {
    PolicyKind::Refcount, PolicyKind::PageFlag, PolicyKind::Mlock,
    PolicyKind::MlockTracked, PolicyKind::Kiobuf};

[[nodiscard]] constexpr std::string_view to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::Refcount: return "refcount (Berkeley/M-VIA)";
    case PolicyKind::PageFlag: return "pageflag (Giganet)";
    case PolicyKind::Mlock: return "mlock (VMA)";
    case PolicyKind::MlockTracked: return "mlock+track (VMA)";
    case PolicyKind::Kiobuf: return "kiobuf (proposed)";
  }
  return "?";
}

/// Construct the policy in the given execution mode. The serial default
/// leaves the policy's internal mutex a no-op branch; threaded arms it (the
/// only behavioural difference - placement and accounting are identical).
[[nodiscard]] inline std::unique_ptr<LockPolicy> make_policy(
    PolicyKind kind, simkern::Kernel& kern, sync::SyncPolicy sync = {}) {
  std::unique_ptr<LockPolicy> p;
  switch (kind) {
    case PolicyKind::Refcount:
      p = std::make_unique<RefcountLockPolicy>(kern);
      break;
    case PolicyKind::PageFlag:
      p = std::make_unique<PageFlagLockPolicy>(kern);
      break;
    case PolicyKind::Mlock:
      p = std::make_unique<MlockLockPolicy>(kern);
      break;
    case PolicyKind::MlockTracked:
      p = std::make_unique<MlockLockPolicy>(
          kern, MlockLockPolicy::Options{.userdma_patch = false,
                                         .track_ranges = true});
      break;
    case PolicyKind::Kiobuf:
      p = std::make_unique<KiobufLockPolicy>(kern);
      break;
  }
  if (p) p->set_policy(sync);
  return p;
}

}  // namespace vialock::via
