// remote_window.h - SCI-style programmed I/O into exported remote memory.
//
// The collection's combined VIA/SCI papers insist a communication system
// needs BOTH transfer modes: "besides a powerful DMA engine controllable
// from user-level, a distributed shared memory for programmed IO is an
// important feature which shouldn't be missed" - PIO wins for short
// transfers (a simple store, ~2.3 us on Dolphin hardware), descriptor DMA
// for long ones. A RemoteWindow is the import side of that model: a process
// imports a region another process *exported* (registered), and then moves
// data with plain store/load semantics - no descriptors, no doorbells.
//
// Every access is translated and protection-checked through the exporter's
// TPT, so the window inherits the paper's central hazard too: if the
// exporter's pages were not reliably locked, PIO silently reads/writes stale
// frames exactly like the DMA engine does (see remote_window_test.cc).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "util/status.h"
#include "via/fabric.h"
#include "via/memory_handle.h"

namespace vialock::via {

class RemoteWindow {
 public:
  /// Import `exported` (a registration on `remote_node`, its handle
  /// communicated out of band) into an accessor owned by `local_node`.
  /// Fails when the handle is not live in the remote TPT.
  [[nodiscard]] static std::optional<RemoteWindow> import(
      Fabric& fabric, NodeId local_node, NodeId remote_node,
      const MemHandle& exported);

  /// Posted remote store: data lands in the exporter's physical frames.
  [[nodiscard]] KStatus store(std::uint64_t offset,
                              std::span<const std::byte> data);
  /// Remote read ("an expensive operation in the SCI environment").
  [[nodiscard]] KStatus load(std::uint64_t offset, std::span<std::byte> out);

  [[nodiscard]] std::uint64_t size() const { return handle_.length; }
  [[nodiscard]] NodeId remote_node() const { return remote_; }

 private:
  RemoteWindow(Fabric& fabric, NodeId local, NodeId remote, MemHandle handle)
      : fabric_(&fabric), local_(local), remote_(remote), handle_(handle) {}

  /// Translate + touch remote frames; `write` selects direction.
  [[nodiscard]] KStatus access(std::uint64_t offset, std::span<std::byte> rd,
                               std::span<const std::byte> wr);

  Fabric* fabric_;
  NodeId local_;
  NodeId remote_;
  MemHandle handle_;
};

}  // namespace vialock::via
