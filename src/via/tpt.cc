#include "via/tpt.h"

#include <cassert>

namespace vialock::via {

TptIndex Tpt::alloc(std::uint32_t count) {
  if (count == 0 || count > capacity()) return kInvalidTptIndex;
  sync::Guard g(mu_);
  const auto base = free_.find_first_fit(count);
  if (!base) return kInvalidTptIndex;
  free_.reserve(*base, count);
  used_ += count;
  return *base;
}

void Tpt::release(TptIndex base, std::uint32_t count) {
  assert(base + count <= capacity());
  sync::Guard g(mu_);
  free_.release(base, count);  // checks double-free in debug builds
  for (std::uint32_t j = base; j < base + count; ++j) entries_[j] = TptEntry{};
  used_ -= count;
}

std::optional<Tpt::Translation> Tpt::translate(TptIndex base,
                                               std::uint32_t count,
                                               std::uint64_t offset,
                                               ProtectionTag tag,
                                               bool rdma_write,
                                               bool rdma_read) const {
  const auto page = static_cast<std::uint64_t>(offset >> simkern::kPageShift);
  if (count == 0 || base >= capacity() || count > capacity() - base)
    return std::nullopt;

  // Fast path: in the order-0 dense layout entry i covers exactly page i, so
  // probing base+page resolves without a search. A single-entry region (one
  // superpage) hits the same probe via the min() clamp.
  const TptEntry* e = nullptr;
  const auto probe = static_cast<std::uint32_t>(
      page < count ? page : static_cast<std::uint64_t>(count) - 1);
  const TptEntry& guess = entries_[base + probe];
  if (guess.page_start <= page && page - guess.page_start < guess.span_pages()) {
    e = &guess;
  } else {
    // Mixed-order layout: entries hold ascending page_start; find the last
    // entry whose run begins at or before `page`.
    std::uint32_t lo = 0;
    std::uint32_t hi = count;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (entries_[base + mid].page_start <= page)
        lo = mid + 1;
      else
        hi = mid;
    }
    if (lo == 0) return std::nullopt;
    const TptEntry& cand = entries_[base + lo - 1];
    if (page - cand.page_start >= cand.span_pages()) return std::nullopt;
    e = &cand;
  }

  if (!e->valid) return std::nullopt;
  if (e->tag != tag) return std::nullopt;  // the protection-tag check
  if (rdma_write && !e->rdma_write_enable) return std::nullopt;
  if (rdma_read && !e->rdma_read_enable) return std::nullopt;
  return Translation{
      e->pfn + static_cast<simkern::Pfn>(page - e->page_start),
      static_cast<std::uint32_t>(offset & simkern::kPageMask)};
}

}  // namespace vialock::via
