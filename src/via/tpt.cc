#include "via/tpt.h"

#include <cassert>

namespace vialock::via {

TptIndex Tpt::alloc(std::uint32_t count) {
  if (count == 0 || count > capacity()) return kInvalidTptIndex;
  const auto base = free_.find_first_fit(count);
  if (!base) return kInvalidTptIndex;
  free_.reserve(*base, count);
  used_ += count;
  return *base;
}

void Tpt::release(TptIndex base, std::uint32_t count) {
  assert(base + count <= capacity());
  free_.release(base, count);  // checks double-free in debug builds
  for (std::uint32_t j = base; j < base + count; ++j) entries_[j] = TptEntry{};
  used_ -= count;
}

std::optional<Tpt::Translation> Tpt::translate(TptIndex base,
                                               std::uint32_t count,
                                               std::uint64_t offset,
                                               ProtectionTag tag,
                                               bool rdma_write,
                                               bool rdma_read) const {
  const auto page = static_cast<std::uint32_t>(offset >> simkern::kPageShift);
  if (page >= count) return std::nullopt;
  const TptIndex idx = base + page;
  if (idx >= capacity()) return std::nullopt;
  const TptEntry& e = entries_[idx];
  if (!e.valid) return std::nullopt;
  if (e.tag != tag) return std::nullopt;  // the protection-tag check
  if (rdma_write && !e.rdma_write_enable) return std::nullopt;
  if (rdma_read && !e.rdma_read_enable) return std::nullopt;
  return Translation{e.pfn,
                     static_cast<std::uint32_t>(offset & simkern::kPageMask)};
}

}  // namespace vialock::via
