// vi.h - Virtual Interfaces: per-process protected channels into the NIC.
//
// A VI is a pair of work queues plus doorbells, bound to one protection tag.
// The tag binding is how VIA enforces that a process can only move memory it
// registered itself: descriptors posted on this VI are checked against the
// TPT under this tag.
#pragma once

#include <cstdint>
#include <deque>

#include "via/descriptor.h"
#include "via/tpt.h"

namespace vialock::via {

enum class ViState : std::uint8_t { Idle, Connected, Error };

/// Completion queue identifier (VIs may direct completions to shared CQs).
using CqId = std::uint32_t;
inline constexpr CqId kInvalidCq = static_cast<CqId>(-1);

struct Vi {
  ViId id = kInvalidVi;
  ProtectionTag tag = kInvalidTag;
  ViState state = ViState::Idle;
  NodeId peer_node = kInvalidNode;
  ViId peer_vi = kInvalidVi;
  bool reliable = true;  ///< reliable delivery: errors break the connection
  CqId send_cq = kInvalidCq;  ///< send completions route here when set
  CqId recv_cq = kInvalidCq;  ///< receive completions route here when set

  std::deque<Descriptor> recv_queue;      ///< posted, not yet consumed
  std::deque<Descriptor> send_completed;  ///< completions awaiting poll
  std::deque<Descriptor> recv_completed;

  [[nodiscard]] bool connected() const { return state == ViState::Connected; }
};

}  // namespace vialock::via
