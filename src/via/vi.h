// vi.h - Virtual Interfaces: per-process protected channels into the NIC.
//
// A VI is a pair of work queues plus doorbells, bound to one protection tag.
// The tag binding is how VIA enforces that a process can only move memory it
// registered itself: descriptors posted on this VI are checked against the
// TPT under this tag.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>

#include "via/descriptor.h"
#include "via/tpt.h"

namespace vialock::via {

enum class ViState : std::uint8_t { Idle, Connected, Error };

/// VIA delivery service classes (VI spec: reliability is a VI attribute
/// chosen at creation, not per descriptor).
enum class Reliability : std::uint8_t {
  Unreliable,  ///< frames may be lost silently; errors do not break the VI
  Reliable,    ///< delivery errors transition the VI to the Error state
};

[[nodiscard]] constexpr std::string_view to_string(Reliability r) {
  switch (r) {
    case Reliability::Unreliable: return "unreliable";
    case Reliability::Reliable: return "reliable";
  }
  return "?";
}

/// Creation-time attributes of a VI (VipCreateVi's ViAttribs, reduced to
/// what the simulation models). Named factories for the two service classes
/// keep call sites self-describing.
struct ViAttributes {
  Reliability reliability = Reliability::Reliable;

  [[nodiscard]] static constexpr ViAttributes reliable() {
    return {Reliability::Reliable};
  }
  [[nodiscard]] static constexpr ViAttributes unreliable() {
    return {Reliability::Unreliable};
  }
};

/// Completion queue identifier (VIs may direct completions to shared CQs).
using CqId = std::uint32_t;
inline constexpr CqId kInvalidCq = static_cast<CqId>(-1);

struct Vi {
  ViId id = kInvalidVi;
  ProtectionTag tag = kInvalidTag;
  ViState state = ViState::Idle;
  NodeId peer_node = kInvalidNode;
  ViId peer_vi = kInvalidVi;
  bool reliable = true;  ///< reliable delivery: errors break the connection
  CqId send_cq = kInvalidCq;  ///< send completions route here when set
  CqId recv_cq = kInvalidCq;  ///< receive completions route here when set

  std::deque<Descriptor> recv_queue;      ///< posted, not yet consumed
  std::deque<Descriptor> send_completed;  ///< completions awaiting poll
  std::deque<Descriptor> recv_completed;

  [[nodiscard]] bool connected() const { return state == ViState::Connected; }
};

}  // namespace vialock::via
