#include "via/superpage.h"

#include <bit>

namespace vialock::via {

std::vector<SuperpageRun> decompose_superpages(
    std::span<const simkern::Pfn> pfns, std::uint8_t max_order) {
  std::vector<SuperpageRun> runs;
  const auto n = static_cast<std::uint32_t>(pfns.size());
  std::uint32_t i = 0;
  while (i < n) {
    // Length of the contiguous ascending frame run starting at page i.
    std::uint32_t len = 1;
    while (i + len < n && pfns[i + len] == pfns[i] + len) ++len;
    // Cut the run into power-of-two chunks, largest first.
    std::uint32_t off = 0;
    while (off < len) {
      const auto fit = static_cast<std::uint8_t>(std::bit_width(len - off) - 1);
      const std::uint8_t order = fit < max_order ? fit : max_order;
      runs.push_back(SuperpageRun{i + off, order});
      off += 1u << order;
    }
    i += len;
  }
  return runs;
}

}  // namespace vialock::via
