#include "via/nic.h"

#include <cassert>
#include <cstring>

#include "via/fabric.h"

namespace vialock::via {

Nic::Nic(simkern::Kernel& host, Clock& clock, const CostModel& costs,
         NicConfig config)
    : host_(host),
      clock_(clock),
      costs_(costs),
      config_(config),
      tpt_(config.tpt_entries),
      dma_bytes_(host.metrics().histogram("via.nic.dma_bytes")),
      descs_per_ring_(host.metrics().histogram("via.nic.descs_per_ring")) {
  host_.metrics().register_source("via.nic", this, [this](obs::MetricSink& s) {
    s.counter("doorbells", stats_.doorbells);
    s.counter("sends_posted", stats_.sends_posted);
    s.counter("recvs_posted", stats_.recvs_posted);
    s.counter("sends_ok", stats_.sends_ok);
    s.counter("recvs_ok", stats_.recvs_ok);
    s.counter("rdma_writes", stats_.rdma_writes);
    s.counter("rdma_reads", stats_.rdma_reads);
    s.counter("protection_errors", stats_.protection_errors);
    s.counter("no_recv_desc", stats_.no_recv_desc);
    s.counter("length_errors", stats_.length_errors);
    s.counter("bytes_tx", stats_.bytes_tx);
    s.counter("bytes_rx", stats_.bytes_rx);
    s.counter("tpt_writes", stats_.tpt_writes);
    s.counter("doorbell_batches", stats_.doorbell_batches);
    s.counter("cq_harvests", stats_.cq_harvests);
    s.counter("cq_harvested", stats_.cq_harvested);
    s.counter("doorbells_dropped", stats_.doorbells_dropped);
    s.counter("dma_corruptions", stats_.dma_corruptions);
    s.counter("tpt_corruptions", stats_.tpt_corruptions);
    s.counter("tpt_evictions", stats_.tpt_evictions);
    s.gauge("tpt.used", tpt_.used());
    s.gauge("tpt.free", tpt_.free_entries());
    s.gauge("tpt.free_extents", tpt_.free_extent_count());
    s.gauge("tpt.largest_free_run", tpt_.largest_free_run());
    s.gauge("vis", vis_.size());
  });
}

Nic::~Nic() { host_.metrics().unregister_source("via.nic", this); }

ViId Nic::create_vi(ProtectionTag tag, bool reliable) {
  if (vis_.size() >= config_.max_vis || tag == kInvalidTag) return kInvalidVi;
  Vi v;
  v.id = static_cast<ViId>(vis_.size());
  v.tag = tag;
  v.reliable = reliable;
  vis_.push_back(std::move(v));
  return vis_.back().id;
}

Vi& Nic::vi(ViId id) {
  assert(id < vis_.size());
  return vis_[id];
}

const Vi& Nic::vi(ViId id) const {
  assert(id < vis_.size());
  return vis_[id];
}

bool Nic::vi_exists(ViId id) const { return id < vis_.size(); }

void Nic::program_tpt(TptIndex idx, const TptEntry& e) {
  TptEntry programmed = e;
  if (faults_ && programmed.valid) {
    if (const auto d = faults_->check(fault::FaultSite::TptWrite)) {
      if (d->action == fault::FaultAction::Corrupt) {
        // SRAM bit-flip on the way in: the entry stays valid but points at a
        // different (in-range) frame - the silent wrong-DMA failure mode.
        const auto frames = host_.phys().num_frames();
        programmed.pfn = static_cast<simkern::Pfn>(
            (programmed.pfn ^ d->corrupt_mask) % frames);
        if (programmed.pfn == e.pfn) {
          programmed.pfn = (programmed.pfn + 1) % frames;
        }
        ++stats_.tpt_corruptions;
        host_.trace().record(clock_.now(), TraceEvent::DmaCorrupted, 0, idx,
                             programmed.pfn);
      } else if (d->action == fault::FaultAction::Fail ||
                 d->action == fault::FaultAction::Drop) {
        // Entry evicted/lost: later translations fail the validity check and
        // surface as protection errors.
        programmed.valid = false;
        ++stats_.tpt_evictions;
      }
    }
  }
  tpt_.set(idx, programmed);
  clock_.advance(costs_.pci_reg_write);
  ++stats_.tpt_writes;
}

// ---------------------------------------------------------------------------
// Gather / scatter through the TPT
// ---------------------------------------------------------------------------

bool Nic::gather(const DataSegment& seg, ProtectionTag tag,
                 std::vector<std::byte>& out) {
  const auto base_off = seg.handle.offset_of(seg.addr, seg.length);
  if (!base_off || seg.handle.tag != tag) return false;
  const std::size_t base = out.size();
  out.resize(base + seg.length);
  std::uint32_t done = 0;
  while (done < seg.length) {
    const std::uint64_t off = *base_off + done;
    const auto tr = tpt_.translate(seg.handle.tpt_base, seg.handle.tpt_count,
                                   off, tag, /*rdma_write=*/false,
                                   /*rdma_read=*/false);
    if (!tr) return false;
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(seg.length - done,
                                simkern::kPageSize - tr->page_offset));
    auto frame = host_.phys().frame(tr->pfn);
    std::memcpy(out.data() + base + done, frame.data() + tr->page_offset,
                chunk);
    done += chunk;
  }
  clock_.advance(costs_.dma_startup);  // streaming is charged on the path
  return true;
}

bool Nic::gather_desc(const Descriptor& desc, ProtectionTag tag,
                      std::vector<std::byte>& out) {
  if (desc.num_segments() > Descriptor::kMaxSegments) return false;
  out.clear();
  out.reserve(desc.total_length());
  for (std::size_t i = 0; i < desc.num_segments(); ++i) {
    if (!gather(desc.segment(i), tag, out)) return false;
  }
  return true;
}

bool Nic::scatter_desc(const Descriptor& desc, ProtectionTag tag,
                       std::span<const std::byte> data) {
  if (desc.num_segments() > Descriptor::kMaxSegments) return false;
  std::uint64_t done = 0;
  for (std::size_t i = 0; i < desc.num_segments() && done < data.size(); ++i) {
    const DataSegment& seg = desc.segment(i);
    const auto chunk = std::min<std::uint64_t>(seg.length, data.size() - done);
    if (!scatter(seg, tag, data.subspan(done, chunk))) return false;
    done += chunk;
  }
  return done == data.size();
}

bool Nic::scatter(const DataSegment& seg, ProtectionTag tag,
                  std::span<const std::byte> data) {
  assert(data.size() <= seg.length);
  const auto base_off = seg.handle.offset_of(seg.addr, data.size());
  if (!base_off || seg.handle.tag != tag) return false;
  std::uint64_t done = 0;
  while (done < data.size()) {
    const std::uint64_t off = *base_off + done;
    const auto tr = tpt_.translate(seg.handle.tpt_base, seg.handle.tpt_count,
                                   off, tag, /*rdma_write=*/false,
                                   /*rdma_read=*/false);
    if (!tr) return false;
    const auto chunk = std::min<std::uint64_t>(
        data.size() - done, simkern::kPageSize - tr->page_offset);
    auto frame = host_.phys().frame(tr->pfn);
    std::memcpy(frame.data() + tr->page_offset, data.data() + done, chunk);
    done += chunk;
  }
  clock_.advance(costs_.dma_startup);  // streaming is charged on the path
  return true;
}

// ---------------------------------------------------------------------------
// Raw local DMA (locktest primitive)
// ---------------------------------------------------------------------------

KStatus Nic::dma_write_local(const MemHandle& mh, simkern::VAddr addr,
                             std::span<const std::byte> data) {
  DataSegment seg{mh, addr, static_cast<std::uint32_t>(data.size())};
  if (!scatter(seg, mh.tag, data)) {
    ++stats_.protection_errors;
    return KStatus::Fault;
  }
  return KStatus::Ok;
}

KStatus Nic::dma_read_local(const MemHandle& mh, simkern::VAddr addr,
                            std::span<std::byte> out) {
  DataSegment seg{mh, addr, static_cast<std::uint32_t>(out.size())};
  std::vector<std::byte> tmp;
  if (!gather(seg, mh.tag, tmp)) {
    ++stats_.protection_errors;
    return KStatus::Fault;
  }
  std::memcpy(out.data(), tmp.data(), tmp.size());
  return KStatus::Ok;
}

// ---------------------------------------------------------------------------
// Work queues
// ---------------------------------------------------------------------------

void Nic::complete_send(Vi& v, Descriptor desc, DescStatus st) {
  desc.status = st;
  if (st == DescStatus::Done) {
    desc.transferred = static_cast<std::uint32_t>(desc.total_length());
    ++stats_.sends_ok;
  } else if (v.reliable) {
    break_vi(v);
  }
  if (v.send_cq != kInvalidCq) {
    cqs_[v.send_cq].push_back(CqEntry{v.id, /*is_send=*/true, std::move(desc)});
  } else {
    v.send_completed.push_back(std::move(desc));
  }
}

void Nic::complete_recv(Vi& v, Descriptor desc) {
  if (v.recv_cq != kInvalidCq) {
    cqs_[v.recv_cq].push_back(CqEntry{v.id, /*is_send=*/false, std::move(desc)});
  } else {
    v.recv_completed.push_back(std::move(desc));
  }
}

CqId Nic::create_cq() {
  cqs_.emplace_back();
  return static_cast<CqId>(cqs_.size() - 1);
}

KStatus Nic::attach_send_cq(ViId vi_id, CqId cq) {
  if (!vi_exists(vi_id) || cq >= cqs_.size()) return KStatus::Inval;
  vis_[vi_id].send_cq = cq;
  return KStatus::Ok;
}

KStatus Nic::attach_recv_cq(ViId vi_id, CqId cq) {
  if (!vi_exists(vi_id) || cq >= cqs_.size()) return KStatus::Inval;
  vis_[vi_id].recv_cq = cq;
  return KStatus::Ok;
}

std::optional<Nic::CqEntry> Nic::poll_cq(CqId cq) {
  if (cq >= cqs_.size()) return std::nullopt;
  clock_.advance(costs_.pci_reg_read);
  if (cqs_[cq].empty()) return std::nullopt;
  CqEntry e = std::move(cqs_[cq].front());
  cqs_[cq].pop_front();
  return e;
}

std::uint32_t Nic::poll_cq_batch(CqId cq, std::uint32_t max,
                                 std::vector<CqEntry>& out) {
  if (cq >= cqs_.size() || max == 0) return 0;
  clock_.advance(costs_.pci_reg_read);  // one tail read for the whole harvest
  ++stats_.cq_harvests;
  std::uint32_t n = 0;
  while (n < max && !cqs_[cq].empty()) {
    out.push_back(std::move(cqs_[cq].front()));
    cqs_[cq].pop_front();
    ++n;
  }
  stats_.cq_harvested += n;
  return n;
}

void Nic::break_vi(Vi& v) { v.state = ViState::Error; }

KStatus Nic::post_send(ViId id, Descriptor desc) {
  if (!vi_exists(id)) return KStatus::Inval;
  // Stitched under the originating send's trace (the ambient context the
  // transport pushed): doorbell ring -> descriptor fetch -> DMA gather ->
  // wire (fabric.cc) -> remote scatter (deliver()).
  const obs::ScopedSpan post_span(host_.spans(), "via.post_send");
  {
    const obs::ScopedSpan doorbell_span(host_.spans(), "via.doorbell");
    clock_.advance(costs_.doorbell + costs_.dma_startup);  // doorbell + desc fetch
  }
  ++stats_.doorbells;
  ++stats_.sends_posted;

  // Injected doorbell drop: the posted write to the doorbell register is
  // lost, so the NIC never fetches the descriptor. No completion is ever
  // produced - the caller's poll loop sees silence, exactly like real
  // hardware with a flaky PCI posting path.
  if (faults_) {
    if (const auto d = faults_->check(fault::FaultSite::NicDoorbell);
        d && (d->action == fault::FaultAction::Drop ||
              d->action == fault::FaultAction::Fail)) {
      ++stats_.doorbells_dropped;
      return KStatus::Ok;
    }
  }

  return submit_send(id, std::move(desc));
}

KStatus Nic::post_send_batch(ViId id, std::vector<Descriptor> descs) {
  if (!vi_exists(id)) return KStatus::Inval;
  if (descs.empty()) return KStatus::Ok;
  const obs::ScopedSpan post_span(host_.spans(), "via.post_send_batch");
  {
    const obs::ScopedSpan doorbell_span(host_.spans(), "via.doorbell");
    // One MMIO ring announces the chain; the engine still fetches each
    // descriptor (dma_startup apiece), so only the doorbell amortises.
    clock_.advance(costs_.doorbell +
                   costs_.dma_startup * static_cast<Nanos>(descs.size()));
  }
  ++stats_.doorbells;
  ++stats_.doorbell_batches;
  stats_.sends_posted += descs.size();
  descs_per_ring_.add(descs.size());

  // Burst loss semantics: the chain lives in host memory, so a fault during
  // the burst costs exactly the descriptor whose fetch it covered - the
  // engine resynchronises on the chain's next link and the remaining
  // descriptors still post. (The seed checked the fault once for the whole
  // burst and dropped every descriptor behind it, so a single injected
  // drop silently lost N-1 healthy sends - caught by NicBatch tests.)
  for (Descriptor& desc : descs) {
    if (faults_) {
      if (const auto d = faults_->check(fault::FaultSite::NicDoorbell);
          d && (d->action == fault::FaultAction::Drop ||
                d->action == fault::FaultAction::Fail)) {
        ++stats_.doorbells_dropped;
        continue;  // this descriptor alone is lost, never fetched
      }
    }
    const KStatus st = submit_send(id, std::move(desc));
    if (!ok(st)) return st;
  }
  return KStatus::Ok;
}

KStatus Nic::submit_send(ViId id, Descriptor desc) {
  Vi& v = vis_[id];
  if (!v.connected()) {
    complete_send(v, std::move(desc), DescStatus::ErrDisconnected);
    return KStatus::Ok;
  }

  Packet pkt;
  pkt.src_node = node_id_;
  pkt.src_vi = id;
  pkt.dst_vi = v.peer_vi;
  pkt.op = desc.op;
  pkt.remote = desc.remote;
  pkt.immediate = desc.immediate;
  pkt.has_immediate = desc.has_immediate;

  if (desc.op == DescOp::RdmaRead) {
    pkt.read_length = static_cast<std::uint32_t>(desc.total_length());
  } else {
    // Send / RdmaWrite: gather the local segments under this VI's tag.
    const obs::ScopedSpan gather_span(host_.spans(), "via.dma.gather");
    if (!gather_desc(desc, v.tag, pkt.payload)) {
      ++stats_.protection_errors;
      complete_send(v, std::move(desc), DescStatus::ErrProtection);
      return KStatus::Ok;
    }
    stats_.bytes_tx += pkt.payload.size();

    // Injected DMA faults: a bit-flip in the gathered payload (silent - the
    // checksum layer above must catch it) or an engine latency spike.
    if (faults_ && !pkt.payload.empty()) {
      if (const auto d = faults_->check(fault::FaultSite::NicDma)) {
        if (d->action == fault::FaultAction::Corrupt) {
          const std::size_t pos = d->entropy % pkt.payload.size();
          pkt.payload[pos] ^= static_cast<std::byte>(d->corrupt_mask);
          ++stats_.dma_corruptions;
          host_.trace().record(clock_.now(), TraceEvent::DmaCorrupted, 0, pos,
                               0);
        } else if (d->action == fault::FaultAction::Delay) {
          clock_.advance(d->delay);
          ++stats_.dma_delays;
        }
      }
    }
  }

  std::vector<std::byte> read_back;
  assert(fabric_ && "NIC not attached to a fabric");
  const DescStatus st = fabric_->transmit(pkt, &read_back);

  if (desc.op == DescOp::RdmaRead && st == DescStatus::Done) {
    stats_.bytes_rx += read_back.size();
    ++stats_.rdma_reads;
    if (!scatter_desc(desc, v.tag, read_back)) {
      ++stats_.protection_errors;
      complete_send(v, std::move(desc), DescStatus::ErrProtection);
      return KStatus::Ok;
    }
  }
  if (desc.op == DescOp::RdmaWrite && st == DescStatus::Done) {
    ++stats_.rdma_writes;
  }
  complete_send(v, std::move(desc), st);
  return KStatus::Ok;
}

KStatus Nic::post_recv(ViId id, Descriptor desc) {
  if (!vi_exists(id)) return KStatus::Inval;
  Vi& v = vis_[id];
  clock_.advance(costs_.doorbell);
  ++stats_.doorbells;
  ++stats_.recvs_posted;
  desc.op = DescOp::Recv;
  desc.status = DescStatus::Pending;
  v.recv_queue.push_back(std::move(desc));
  return KStatus::Ok;
}

KStatus Nic::post_recv_batch(ViId id, std::vector<Descriptor> descs) {
  if (!vi_exists(id)) return KStatus::Inval;
  if (descs.empty()) return KStatus::Ok;
  Vi& v = vis_[id];
  // One MMIO ring arms the whole chain; receive descriptors are fetched
  // lazily on packet arrival, so there is no per-entry engine work here.
  clock_.advance(costs_.doorbell);
  ++stats_.doorbells;
  ++stats_.doorbell_batches;
  stats_.recvs_posted += descs.size();
  descs_per_ring_.add(descs.size());
  for (Descriptor& desc : descs) {
    desc.op = DescOp::Recv;
    desc.status = DescStatus::Pending;
    v.recv_queue.push_back(std::move(desc));
  }
  return KStatus::Ok;
}

std::optional<Descriptor> Nic::poll_send(ViId id) {
  if (!vi_exists(id)) return std::nullopt;
  Vi& v = vis_[id];
  clock_.advance(costs_.pci_reg_read);  // status poll
  if (v.send_completed.empty()) return std::nullopt;
  { const obs::ScopedSpan s(host_.spans(), "via.completion"); }
  Descriptor d = std::move(v.send_completed.front());
  v.send_completed.pop_front();
  return d;
}

std::optional<Descriptor> Nic::poll_recv(ViId id) {
  if (!vi_exists(id)) return std::nullopt;
  Vi& v = vis_[id];
  clock_.advance(costs_.pci_reg_read);
  if (v.recv_completed.empty()) return std::nullopt;
  { const obs::ScopedSpan s(host_.spans(), "via.completion"); }
  Descriptor d = std::move(v.recv_completed.front());
  v.recv_completed.pop_front();
  return d;
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

DescStatus Nic::deliver(Packet& pkt, std::vector<std::byte>* read_back) {
  // Receiver-side DMA under the sender's trace: the fabric delivers inline
  // (one shared virtual clock), so the ambient context pushed around the
  // transfer is still in scope on this host's recorder.
  const obs::ScopedSpan deliver_span(host_.spans(), "via.dma.deliver");
  dma_bytes_.add(pkt.payload.size());
  if (!vi_exists(pkt.dst_vi)) return DescStatus::ErrDisconnected;
  Vi& v = vis_[pkt.dst_vi];
  if (!v.connected() || v.peer_node != pkt.src_node || v.peer_vi != pkt.src_vi) {
    return DescStatus::ErrDisconnected;
  }

  switch (pkt.op) {
    case DescOp::Send: {
      if (v.recv_queue.empty()) {
        // "A receive descriptor must be posted before the peer starts the
        // send operation. Otherwise the message is dropped and the
        // connection broken" (reliable mode).
        ++stats_.no_recv_desc;
        if (v.reliable) break_vi(v);
        return DescStatus::ErrNoRecvDesc;
      }
      Descriptor rd = std::move(v.recv_queue.front());
      v.recv_queue.pop_front();
      if (pkt.payload.size() > rd.total_length()) {
        ++stats_.length_errors;
        rd.status = DescStatus::ErrLength;
        complete_recv(v, std::move(rd));
        if (v.reliable) break_vi(v);
        return DescStatus::ErrLength;
      }
      if (!scatter_desc(rd, v.tag, pkt.payload)) {
        ++stats_.protection_errors;
        rd.status = DescStatus::ErrProtection;
        complete_recv(v, std::move(rd));
        if (v.reliable) break_vi(v);
        return DescStatus::ErrProtection;
      }
      rd.status = DescStatus::Done;
      rd.transferred = static_cast<std::uint32_t>(pkt.payload.size());
      rd.immediate = pkt.immediate;
      rd.has_immediate = pkt.has_immediate;
      stats_.bytes_rx += pkt.payload.size();
      ++stats_.recvs_ok;
      complete_recv(v, std::move(rd));
      return DescStatus::Done;
    }

    case DescOp::RdmaWrite: {
      DataSegment seg{pkt.remote.handle, pkt.remote.addr,
                      static_cast<std::uint32_t>(pkt.payload.size())};
      // RDMA target checked under the *receiving* VI's tag with the
      // rdma_write_enable attribute.
      const auto base_off = seg.handle.offset_of(seg.addr, seg.length);
      if (!base_off || seg.handle.tag != v.tag) {
        ++stats_.protection_errors;
        if (v.reliable) break_vi(v);
        return DescStatus::ErrProtection;
      }
      std::uint64_t done = 0;
      while (done < pkt.payload.size()) {
        const auto tr =
            tpt_.translate(seg.handle.tpt_base, seg.handle.tpt_count,
                           *base_off + done, v.tag, /*rdma_write=*/true,
                           /*rdma_read=*/false);
        if (!tr) {
          ++stats_.protection_errors;
          if (v.reliable) break_vi(v);
          return DescStatus::ErrProtection;
        }
        const auto chunk = std::min<std::uint64_t>(
            pkt.payload.size() - done, simkern::kPageSize - tr->page_offset);
        auto frame = host_.phys().frame(tr->pfn);
        std::memcpy(frame.data() + tr->page_offset, pkt.payload.data() + done,
                    chunk);
        done += chunk;
      }
      clock_.advance(costs_.dma_startup);
      stats_.bytes_rx += pkt.payload.size();
      if (pkt.has_immediate) {
        // RDMA write with immediate data consumes a receive descriptor.
        if (v.recv_queue.empty()) {
          ++stats_.no_recv_desc;
          if (v.reliable) break_vi(v);
          return DescStatus::ErrNoRecvDesc;
        }
        Descriptor rd = std::move(v.recv_queue.front());
        v.recv_queue.pop_front();
        rd.status = DescStatus::Done;
        rd.transferred = 0;
        rd.immediate = pkt.immediate;
        rd.has_immediate = true;
        complete_recv(v, std::move(rd));
      }
      return DescStatus::Done;
    }

    case DescOp::RdmaRead: {
      assert(read_back);
      DataSegment seg{pkt.remote.handle, pkt.remote.addr, pkt.read_length};
      const auto base_off = seg.handle.offset_of(seg.addr, seg.length);
      if (!base_off || seg.handle.tag != v.tag) {
        ++stats_.protection_errors;
        if (v.reliable) break_vi(v);
        return DescStatus::ErrProtection;
      }
      read_back->resize(pkt.read_length);
      std::uint64_t done = 0;
      while (done < pkt.read_length) {
        const auto tr =
            tpt_.translate(seg.handle.tpt_base, seg.handle.tpt_count,
                           *base_off + done, v.tag, /*rdma_write=*/false,
                           /*rdma_read=*/true);
        if (!tr) {
          ++stats_.protection_errors;
          if (v.reliable) break_vi(v);
          return DescStatus::ErrProtection;
        }
        const auto chunk = std::min<std::uint64_t>(
            pkt.read_length - done, simkern::kPageSize - tr->page_offset);
        auto frame = host_.phys().frame(tr->pfn);
        std::memcpy(read_back->data() + done, frame.data() + tr->page_offset,
                    chunk);
        done += chunk;
      }
      clock_.advance(costs_.dma_startup);
      stats_.bytes_tx += pkt.read_length;
      return DescStatus::Done;
    }

    case DescOp::Recv:
      break;
  }
  return DescStatus::ErrDisconnected;
}

}  // namespace vialock::via
