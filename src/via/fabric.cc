#include "via/fabric.h"

#include <cassert>

namespace vialock::via {

NodeId Fabric::attach(Nic& nic) {
  const auto id = static_cast<NodeId>(nics_.size());
  nics_.push_back(&nic);
  nic.attach(this, id);
  return id;
}

KStatus Fabric::connect(NodeId node_a, ViId vi_a, NodeId node_b, ViId vi_b) {
  if (node_a >= nics_.size() || node_b >= nics_.size()) return KStatus::Inval;
  Nic& na = *nics_[node_a];
  Nic& nb = *nics_[node_b];
  if (!na.vi_exists(vi_a) || !nb.vi_exists(vi_b)) return KStatus::Inval;
  Vi& a = na.vi(vi_a);
  Vi& b = nb.vi(vi_b);
  if (a.connected() || b.connected()) return KStatus::Busy;
  a.state = ViState::Connected;
  a.peer_node = node_b;
  a.peer_vi = vi_b;
  b.state = ViState::Connected;
  b.peer_node = node_a;
  b.peer_vi = vi_a;
  return KStatus::Ok;
}

KStatus Fabric::listen(NodeId node, std::uint64_t discriminator, ViId vi) {
  if (node >= nics_.size() || !nics_[node]->vi_exists(vi)) return KStatus::Inval;
  if (nics_[node]->vi(vi).connected()) return KStatus::Busy;
  const auto key = std::make_pair(node, discriminator);
  if (listeners_.contains(key)) return KStatus::Busy;
  listeners_.emplace(key, Listener{node, vi});
  return KStatus::Ok;
}

KStatus Fabric::connect_request(NodeId client_node, ViId client_vi,
                                NodeId server_node,
                                std::uint64_t discriminator) {
  if (client_node >= nics_.size() || server_node >= nics_.size())
    return KStatus::Inval;
  if (!nics_[client_node]->vi_exists(client_vi)) return KStatus::Inval;
  // A connect request crosses the wire even when it is refused.
  clock_.advance(costs_.wire(64));
  const auto key = std::make_pair(server_node, discriminator);
  auto it = listeners_.find(key);
  if (it == listeners_.end()) return KStatus::Again;
  const Listener server = it->second;
  const KStatus st = connect(client_node, client_vi, server.node, server.vi);
  if (!ok(st)) return st;
  listeners_.erase(it);
  clock_.advance(costs_.wire(64));  // accept response
  return KStatus::Ok;
}

KStatus Fabric::disconnect(NodeId node, ViId vi) {
  if (node >= nics_.size() || !nics_[node]->vi_exists(vi)) return KStatus::Inval;
  Vi& v = nics_[node]->vi(vi);
  if (!v.connected()) return KStatus::Proto;
  Nic& peer_nic = *nics_[v.peer_node];
  if (peer_nic.vi_exists(v.peer_vi)) {
    Vi& peer = peer_nic.vi(v.peer_vi);
    if (peer.connected() && peer.peer_node == node && peer.peer_vi == vi) {
      peer.state = ViState::Error;  // the peer sees a broken connection
    }
  }
  v.state = ViState::Idle;
  v.peer_node = kInvalidNode;
  v.peer_vi = kInvalidVi;
  return KStatus::Ok;
}

KStatus Fabric::repair(NodeId node_a, ViId vi_a, NodeId node_b, ViId vi_b) {
  if (node_a >= nics_.size() || node_b >= nics_.size()) return KStatus::Inval;
  Nic& na = *nics_[node_a];
  Nic& nb = *nics_[node_b];
  if (!na.vi_exists(vi_a) || !nb.vi_exists(vi_b)) return KStatus::Inval;
  // Connection management traffic: one request/accept exchange on the wire.
  clock_.advance(2 * costs_.wire(64));
  Vi& a = na.vi(vi_a);
  Vi& b = nb.vi(vi_b);
  a.state = ViState::Connected;
  a.peer_node = node_b;
  a.peer_vi = vi_b;
  b.state = ViState::Connected;
  b.peer_node = node_a;
  b.peer_vi = vi_a;
  return KStatus::Ok;
}

DescStatus Fabric::transmit(Nic::Packet& pkt, std::vector<std::byte>* read_back) {
  // Find the destination: the source VI's connection names the peer node.
  assert(pkt.src_node < nics_.size());
  Vi& src = nics_[pkt.src_node]->vi(pkt.src_vi);
  if (!src.connected()) return DescStatus::ErrDisconnected;
  const NodeId dst = src.peer_node;
  assert(dst < nics_.size());

  // Injected connection reset: the link drops mid-transfer, both endpoints
  // observe a broken VI. A reliable transport must repair() and retry.
  if (faults_) {
    if (const auto d = faults_->check(fault::FaultSite::Connection);
        d && d->action != fault::FaultAction::Delay) {
      ++connection_resets_;
      src.state = ViState::Error;
      if (nics_[dst]->vi_exists(src.peer_vi)) {
        nics_[dst]->vi(src.peer_vi).state = ViState::Error;
      }
      return DescStatus::ErrDisconnected;
    }
  }

  // Cut-through pipeline: source DMA, wire and sink DMA stream
  // concurrently; one latency plus the slowest stage's per-byte rate.
  // The wire span lands on the *sending* host's recorder so one trace reads
  // doorbell -> gather -> wire -> (remote) deliver.
  const obs::ScopedSpan wire_span(nics_[pkt.src_node]->host().spans(),
                                  "via.wire");
  const std::uint64_t bytes =
      pkt.op == DescOp::RdmaRead ? pkt.read_length : pkt.payload.size();
  clock_.advance(costs_.wire_latency + bytes * costs_.dma_path_per_byte);

  // Injected wire loss: the packet vanishes downstream of the sender's NIC,
  // which has already completed the send - the silent-loss case only an
  // acknowledgement protocol can detect. (A lost RdmaRead request carries
  // its response with it, so the requester sees a disconnect-style error.)
  if (faults_) {
    if (const auto d = faults_->check(fault::FaultSite::Wire);
        d && (d->action == fault::FaultAction::Drop ||
              d->action == fault::FaultAction::Fail)) {
      ++packets_dropped_;
      return pkt.op == DescOp::RdmaRead ? DescStatus::ErrDisconnected
                                        : DescStatus::Done;
    }
  }

  const DescStatus st = nics_[dst]->deliver(pkt, read_back);
  if (pkt.op == DescOp::RdmaRead && st == DescStatus::Done) {
    // The response path carries the data back.
    clock_.advance(costs_.wire_latency + bytes * costs_.dma_path_per_byte);
  }
  return st;
}

}  // namespace vialock::via
