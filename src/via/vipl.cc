#include "via/vipl.h"

namespace vialock::via {

KStatus Vipl::open() {
  tag_ = agent_.create_ptag(pid_);
  return tag_ == kInvalidTag ? KStatus::NoEnt : KStatus::Ok;
}

KStatus Vipl::register_mem(simkern::VAddr addr, std::uint64_t len,
                           MemHandle& out, KernelAgent::RegisterOptions opts) {
  if (tag_ == kInvalidTag) return KStatus::Proto;
  return agent_.register_mem(pid_, addr, len, tag_, out, opts);
}

KStatus Vipl::deregister_mem(const MemHandle& handle) {
  return agent_.deregister_mem(handle);
}

KStatus Vipl::create_vi(ViId& out, ViAttributes attrs) {
  out = kInvalidVi;
  if (tag_ == kInvalidTag) return KStatus::Proto;
  const ViId id = agent_.nic().create_vi(
      tag_, attrs.reliability == Reliability::Reliable);
  if (id == kInvalidVi) return KStatus::NoSpc;
  out = id;
  return KStatus::Ok;
}

Descriptor Vipl::build(DescOp op, const MemHandle& mh, simkern::VAddr addr,
                       std::uint32_t len, std::uint64_t cookie) {
  agent_.kern().clock().advance(agent_.kern().costs().descriptor_build);
  Descriptor d;
  d.cookie = cookie;
  d.op = op;
  d.local = DataSegment{mh, addr, len};
  return d;
}

KStatus Vipl::post_send(ViId vi, const MemHandle& mh, simkern::VAddr addr,
                        std::uint32_t len, std::uint64_t cookie) {
  return agent_.nic().post_send(vi, build(DescOp::Send, mh, addr, len, cookie));
}

KStatus Vipl::post_recv(ViId vi, const MemHandle& mh, simkern::VAddr addr,
                        std::uint32_t len, std::uint64_t cookie) {
  return agent_.nic().post_recv(vi, build(DescOp::Recv, mh, addr, len, cookie));
}

KStatus Vipl::rdma_write(ViId vi, const MemHandle& local_mh,
                         simkern::VAddr local_addr, std::uint32_t len,
                         const MemHandle& remote_mh, simkern::VAddr remote_addr,
                         std::uint64_t cookie,
                         std::optional<std::uint32_t> immediate) {
  Descriptor d = build(DescOp::RdmaWrite, local_mh, local_addr, len, cookie);
  d.remote = RemoteSegment{remote_mh, remote_addr};
  if (immediate) {
    d.immediate = *immediate;
    d.has_immediate = true;
  }
  return agent_.nic().post_send(vi, std::move(d));
}

KStatus Vipl::rdma_read(ViId vi, const MemHandle& local_mh,
                        simkern::VAddr local_addr, std::uint32_t len,
                        const MemHandle& remote_mh, simkern::VAddr remote_addr,
                        std::uint64_t cookie) {
  Descriptor d = build(DescOp::RdmaRead, local_mh, local_addr, len, cookie);
  d.remote = RemoteSegment{remote_mh, remote_addr};
  return agent_.nic().post_send(vi, std::move(d));
}

KStatus Vipl::post_send_batch(ViId vi, std::span<const SendPost> posts) {
  std::vector<Descriptor> descs;
  descs.reserve(posts.size());
  for (const SendPost& p : posts)
    descs.push_back(build(DescOp::Send, p.mh, p.addr, p.len, p.cookie));
  return agent_.nic().post_send_batch(vi, std::move(descs));
}

KStatus Vipl::post_recv_batch(ViId vi, std::span<const RecvPost> posts) {
  std::vector<Descriptor> descs;
  descs.reserve(posts.size());
  for (const RecvPost& p : posts)
    descs.push_back(build(DescOp::Recv, p.mh, p.addr, p.len, p.cookie));
  return agent_.nic().post_recv_batch(vi, std::move(descs));
}

KStatus Vipl::post_send_sg(ViId vi, std::vector<DataSegment> segs,
                           std::uint64_t cookie) {
  if (segs.empty() || segs.size() > Descriptor::kMaxSegments)
    return KStatus::Inval;
  Descriptor d = build(DescOp::Send, segs[0].handle, segs[0].addr,
                       segs[0].length, cookie);
  d.extra.assign(segs.begin() + 1, segs.end());
  return agent_.nic().post_send(vi, std::move(d));
}

KStatus Vipl::post_recv_sg(ViId vi, std::vector<DataSegment> segs,
                           std::uint64_t cookie) {
  if (segs.empty() || segs.size() > Descriptor::kMaxSegments)
    return KStatus::Inval;
  Descriptor d = build(DescOp::Recv, segs[0].handle, segs[0].addr,
                       segs[0].length, cookie);
  d.extra.assign(segs.begin() + 1, segs.end());
  return agent_.nic().post_recv(vi, std::move(d));
}

std::optional<Descriptor> Vipl::send_done(ViId vi) {
  return agent_.nic().poll_send(vi);
}

std::optional<Descriptor> Vipl::recv_done(ViId vi) {
  return agent_.nic().poll_recv(vi);
}

std::optional<Descriptor> Vipl::send_wait(ViId vi) {
  auto d = agent_.nic().poll_send(vi);
  if (d) agent_.kern().clock().advance(agent_.kern().costs().interrupt_wakeup);
  return d;
}

std::optional<Descriptor> Vipl::recv_wait(ViId vi) {
  auto d = agent_.nic().poll_recv(vi);
  if (d) agent_.kern().clock().advance(agent_.kern().costs().interrupt_wakeup);
  return d;
}

}  // namespace vialock::via
