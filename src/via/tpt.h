// tpt.h - the NIC's Translation and Protection Table.
//
// Registered communication memory lives here: one entry per user page holding
// the physical frame number and the protection tag of the owning process
// (VIA spec sections the paper summarises in its introduction). Every DMA
// access the NIC performs is translated and checked through this table - so
// a stale entry (frame relocated by the swapper) makes the NIC silently DMA
// to the wrong physical page, the failure mode of the whole paper.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "simkern/types.h"
#include "sync/mutex.h"
#include "sync/policy.h"
#include "sync/relaxed.h"
#include "util/extent_map.h"
#include "util/status.h"

namespace vialock::via {

/// Protection tag: one per process (created at VipCreatePtag). Tag 0 invalid.
using ProtectionTag = std::uint32_t;
inline constexpr ProtectionTag kInvalidTag = 0;

/// Index into the TPT; a registered region occupies a contiguous entry range.
using TptIndex = std::uint32_t;
inline constexpr TptIndex kInvalidTptIndex = static_cast<TptIndex>(-1);

/// One TPT entry maps a *run* of 2^order contiguous, identically-tagged
/// frames: page_start is the first registration-relative page the run
/// covers and pfn the frame backing that first page (page_start + i maps to
/// pfn + i). Order 0 is the classic one-entry-per-page layout; higher
/// orders are "superpages" that let a large registration occupy
/// O(1)-O(log N) entries instead of N.
struct TptEntry {
  bool valid = false;
  simkern::Pfn pfn = simkern::kInvalidPfn;
  ProtectionTag tag = kInvalidTag;
  bool rdma_write_enable = false;
  bool rdma_read_enable = false;
  std::uint32_t page_start = 0;  ///< registration-relative first page covered
  std::uint8_t order = 0;        ///< entry spans 2^order pages

  [[nodiscard]] std::uint32_t span_pages() const { return 1u << order; }
};

class Tpt {
 public:
  explicit Tpt(std::uint32_t num_entries)
      : entries_(num_entries), free_(num_entries) {}

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] std::uint32_t used() const {
    return static_cast<std::uint32_t>(used_.load());
  }
  [[nodiscard]] std::uint32_t free_entries() const { return capacity() - used(); }

  /// Execution mode: threaded arms the internal mutex serializing the
  /// free-extent index (agents on different real threads can claim and
  /// release table ranges concurrently); serial keeps it a no-op branch.
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

  /// Allocate `count` contiguous entries; kInvalidTptIndex if no hole fits.
  /// First-fit in address order over the free-extent index, so placements
  /// are identical to a front-to-back bitmap scan at O(holes) instead of
  /// O(capacity) cost per allocation.
  [[nodiscard]] TptIndex alloc(std::uint32_t count);

  /// Free holes in the table (fragmentation metric).
  [[nodiscard]] std::size_t free_extent_count() const {
    sync::Guard g(mu_);
    return free_.extent_count();
  }
  /// Largest allocation that could currently succeed.
  [[nodiscard]] std::uint32_t largest_free_run() const {
    sync::Guard g(mu_);
    return free_.largest_extent();
  }

  /// Release a range previously returned by alloc().
  void release(TptIndex base, std::uint32_t count);

  void set(TptIndex idx, const TptEntry& e) { entries_[idx] = e; }
  [[nodiscard]] const TptEntry& get(TptIndex idx) const { return entries_[idx]; }
  [[nodiscard]] TptEntry& get_mutable(TptIndex idx) { return entries_[idx]; }

  struct Translation {
    simkern::Pfn pfn;
    std::uint32_t page_offset;
  };

  /// Translate (base entry, byte offset) under `tag`; checks validity, tag
  /// match and - when `rdma_write`/`rdma_read` - the RDMA enable attributes.
  /// `count` is the number of TPT entries the region occupies (the handle's
  /// tpt_count); the entries must hold ascending page_start values, which
  /// registration guarantees. Order-0 dense layouts (page_start == index)
  /// hit a direct-probe fast path; mixed-order layouts binary-search.
  [[nodiscard]] std::optional<Translation> translate(TptIndex base,
                                                     std::uint32_t count,
                                                     std::uint64_t offset,
                                                     ProtectionTag tag,
                                                     bool rdma_write,
                                                     bool rdma_read) const;

 private:
  std::vector<TptEntry> entries_;
  /// Ordered free-extent index over [0, capacity): allocation and release
  /// cost O(log holes) instead of scanning every entry.
  ExtentMap<TptIndex, std::uint32_t> free_;
  /// Serializes free_ (alloc/release/fragmentation reads). Entry contents
  /// (set/get/translate) are NOT guarded: an entry range belongs to exactly
  /// one registration between alloc and release, and registration-vs-DMA
  /// ordering within a range is the owning host's (or the caller's) problem -
  /// the same discipline real TPT hardware imposes.
  mutable sync::Mutex mu_;
  sync::Relaxed used_;
};

}  // namespace vialock::via
