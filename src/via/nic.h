// nic.h - the simulated VIA NIC.
//
// Register-level model of a native VIA network interface (Giganet-cLAN /
// VIA-capable PCI-SCI bridge class): virtual interfaces with work queues and
// doorbells, a TPT, and a DMA engine. The crucial fidelity point: the DMA
// engine addresses *physical frames* of the host's memory through the TPT.
// It has no view of page tables, so when the swapper relocates a page that a
// broken locking policy failed to pin, the NIC keeps using the old frame -
// silently, with no fault - which is exactly the behaviour the paper's
// locktest experiment exposes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "simkern/kernel.h"
#include "sync/policy.h"
#include "sync/relaxed.h"
#include "via/descriptor.h"
#include "via/tpt.h"
#include "via/vi.h"

namespace vialock::via {

class Fabric;

struct NicConfig {
  std::uint32_t tpt_entries = 8192;  ///< 32 MB of registerable memory
  std::uint32_t max_vis = 256;
  /// Largest superpage order the TPT supports: one entry may cover up to
  /// 2^max_superpage_order contiguous identically-tagged frames (tpt.h).
  /// 0 forces the classic one-entry-per-page layout (the paper's model);
  /// tests asserting per-page TPT geometry pin it to 0 via test::small_node.
  std::uint8_t max_superpage_order = 9;
};

// Relaxed-atomic counters: in threaded mode several real threads can drive
// one NIC (the E26 registration microbench); in scenario runs the engine's
// per-host guards already serialize access, and serial mode is unchanged.
struct NicStats {
  sync::Relaxed doorbells;
  sync::Relaxed sends_posted;
  sync::Relaxed recvs_posted;
  sync::Relaxed sends_ok;
  sync::Relaxed recvs_ok;
  sync::Relaxed rdma_writes;
  sync::Relaxed rdma_reads;
  sync::Relaxed protection_errors;
  sync::Relaxed no_recv_desc;
  sync::Relaxed length_errors;
  sync::Relaxed bytes_tx;
  sync::Relaxed bytes_rx;
  sync::Relaxed tpt_writes;
  // Batched submission/completion (E18's modes extended, experiment E24):
  sync::Relaxed doorbell_batches;  ///< burst post_send/post_recv rings
  sync::Relaxed cq_harvests;       ///< batched CQ polls issued
  sync::Relaxed cq_harvested;      ///< entries drained by batched polls
  // Injected hardware faults (fault::FaultEngine hooks):
  sync::Relaxed doorbells_dropped;   ///< descriptor silently lost
  sync::Relaxed dma_corruptions;     ///< payload bit-flip in flight
  sync::Relaxed dma_delays;          ///< DMA engine latency spike
  sync::Relaxed tpt_corruptions;     ///< TPT entry written with bad pfn
  sync::Relaxed tpt_evictions;       ///< TPT entry written invalid
};

class Nic {
 public:
  Nic(simkern::Kernel& host, Clock& clock, const CostModel& costs,
      NicConfig config = {});
  ~Nic();

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  // --- fabric attachment -----------------------------------------------------
  void attach(Fabric* fabric, NodeId node_id) {
    fabric_ = fabric;
    node_id_ = node_id;
  }
  [[nodiscard]] NodeId node_id() const { return node_id_; }

  // --- VI management -----------------------------------------------------------
  [[nodiscard]] ViId create_vi(ProtectionTag tag, bool reliable = true);
  [[nodiscard]] Vi& vi(ViId id);
  [[nodiscard]] const Vi& vi(ViId id) const;
  [[nodiscard]] bool vi_exists(ViId id) const;

  // --- work queues (doorbell-triggered, executed synchronously) ----------------
  [[nodiscard]] KStatus post_send(ViId id, Descriptor desc);
  /// Burst submission: ONE doorbell ring announces the whole descriptor
  /// chain, then the engine fetches and executes each entry in order. The
  /// per-send doorbell cost amortises across the burst (the posting-side
  /// analogue of E18's completion modes). A dropped doorbell (NicDoorbell
  /// fault) loses exactly the descriptor whose fetch it covered - the chain
  /// is linked in host memory, so the engine resynchronises on the next
  /// entry and the rest of the burst still posts.
  [[nodiscard]] KStatus post_send_batch(ViId id, std::vector<Descriptor> descs);
  [[nodiscard]] KStatus post_recv(ViId id, Descriptor desc);
  /// Burst receive pre-posting: ONE doorbell ring arms the whole chain.
  /// Receive descriptors are only fetched on packet arrival, so - unlike
  /// post_send_batch - nothing executes here; the doorbell cost amortises
  /// across connection setup / credit-refill loops.
  [[nodiscard]] KStatus post_recv_batch(ViId id, std::vector<Descriptor> descs);
  [[nodiscard]] std::optional<Descriptor> poll_send(ViId id);
  [[nodiscard]] std::optional<Descriptor> poll_recv(ViId id);

  // --- completion queues (VipCreateCQ / VipCQDone) ------------------------------
  struct CqEntry {
    ViId vi = kInvalidVi;
    bool is_send = false;
    Descriptor desc;
  };
  [[nodiscard]] CqId create_cq();
  /// Route a VI's send / receive completions to a CQ (before any traffic).
  [[nodiscard]] KStatus attach_send_cq(ViId vi, CqId cq);
  [[nodiscard]] KStatus attach_recv_cq(ViId vi, CqId cq);
  [[nodiscard]] std::optional<CqEntry> poll_cq(CqId cq);
  /// Drain up to `max` completions with ONE PCI status read (the CQ tail is
  /// read once; entries behind it live in host-memory shadow copies).
  /// Appends to `out`, returns the number drained - the completion-side
  /// amortisation a server harvesting thousands of connections relies on.
  [[nodiscard]] std::uint32_t poll_cq_batch(CqId cq, std::uint32_t max,
                                            std::vector<CqEntry>& out);

  // --- TPT (programmed by the kernel agent over PCI) ----------------------------
  [[nodiscard]] Tpt& tpt() { return tpt_; }
  [[nodiscard]] const Tpt& tpt() const { return tpt_; }
  /// Write one TPT entry, charging the PCI register-write cost.
  void program_tpt(TptIndex idx, const TptEntry& e);

  // --- raw local DMA (used by locktest step 5: the kernel agent pokes the
  //     physical page the NIC believes belongs to the registration) ------------
  [[nodiscard]] KStatus dma_write_local(const MemHandle& mh, simkern::VAddr addr,
                                        std::span<const std::byte> data);
  [[nodiscard]] KStatus dma_read_local(const MemHandle& mh, simkern::VAddr addr,
                                       std::span<std::byte> out);

  // --- fabric-facing receive path ----------------------------------------------
  struct Packet {
    NodeId src_node = kInvalidNode;
    ViId src_vi = kInvalidVi;
    ViId dst_vi = kInvalidVi;
    DescOp op = DescOp::Send;
    std::vector<std::byte> payload;
    RemoteSegment remote;  ///< RDMA target / source
    std::uint32_t read_length = 0;  ///< RdmaRead: bytes requested
    std::uint32_t immediate = 0;
    bool has_immediate = false;
  };

  /// Deliver a packet arriving from the wire. Returns the status the sender's
  /// descriptor completes with; for RdmaRead fills `read_back`.
  [[nodiscard]] DescStatus deliver(Packet& pkt,
                                   std::vector<std::byte>* read_back);

  [[nodiscard]] const NicStats& stats() const { return stats_; }
  [[nodiscard]] const NicConfig& config() const { return config_; }
  [[nodiscard]] simkern::Kernel& host() { return host_; }

  /// Arm fault injection on the hardware paths: NicDoorbell (post_send
  /// descriptors silently lost), NicDma (payload bit-flips / latency spikes)
  /// and TptWrite (entries corrupted or evicted as they are programmed).
  void set_fault_engine(fault::FaultEngine* engine) { faults_ = engine; }

  /// Execution mode. Threaded arms the TPT's internal mutex (the only NIC
  /// structure mutated from concurrent registration paths); VI/CQ state is
  /// serialized by the scenario engine's per-host guards, stats are relaxed
  /// atomics. Serial keeps every lock a no-op branch.
  void set_policy(sync::SyncPolicy p) { tpt_.set_policy(p); }

 private:
  /// Gather `seg` (under `tag`) from host physical memory, appending to `out`.
  [[nodiscard]] bool gather(const DataSegment& seg, ProtectionTag tag,
                            std::vector<std::byte>& out);
  /// Gather every segment of `desc` in order.
  [[nodiscard]] bool gather_desc(const Descriptor& desc, ProtectionTag tag,
                                 std::vector<std::byte>& out);
  /// Scatter `data` into `seg` (under `tag`) in host physical memory.
  [[nodiscard]] bool scatter(const DataSegment& seg, ProtectionTag tag,
                             std::span<const std::byte> data);
  /// Scatter `data` across the segments of `desc` in order.
  [[nodiscard]] bool scatter_desc(const Descriptor& desc, ProtectionTag tag,
                                  std::span<const std::byte> data);
  void complete_send(Vi& v, Descriptor desc, DescStatus st);
  void complete_recv(Vi& v, Descriptor desc);
  void break_vi(Vi& v);
  /// Fetch-and-execute one posted send descriptor (everything post_send does
  /// after the doorbell ring and fault check): gather, transmit, complete.
  [[nodiscard]] KStatus submit_send(ViId id, Descriptor desc);

  simkern::Kernel& host_;
  Clock& clock_;
  const CostModel& costs_;
  NicConfig config_;
  Tpt tpt_;
  std::vector<Vi> vis_;
  std::vector<std::deque<CqEntry>> cqs_;
  Fabric* fabric_ = nullptr;
  NodeId node_id_ = kInvalidNode;
  fault::FaultEngine* faults_ = nullptr;
  NicStats stats_;
  // Payload size distribution of packets delivered by the DMA engine.
  obs::Histogram& dma_bytes_;
  // Descriptors announced per batched doorbell ring (send + recv bursts).
  obs::Histogram& descs_per_ring_;
};

}  // namespace vialock::via
