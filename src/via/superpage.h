// superpage.h - decomposing a pinned frame list into superpage TPT runs.
//
// The kernel agent receives a per-page pfn vector from the lock policy and
// must program TPT entries covering it. With superpages enabled an entry may
// cover any 2^k run of physically contiguous frames (tpt.h), so the frame
// list is greedily cut into maximal power-of-two chunks: each contiguous
// ascending pfn run is emitted largest-order-first, capped by the NIC's
// max_superpage_order. Order 0 everywhere reproduces the classic
// one-entry-per-page layout bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simkern/types.h"

namespace vialock::via {

/// One programmed TPT entry's coverage: pages [page_start, page_start+2^order)
/// of the registration, backed by frames [pfn(page_start), ...+2^order).
struct SuperpageRun {
  std::uint32_t page_start = 0;
  std::uint8_t order = 0;

  [[nodiscard]] std::uint32_t pages() const { return 1u << order; }
};

/// Greedy decomposition of `pfns` into the fewest largest-order runs with
/// order <= max_order. Deterministic: depends only on the pfn values.
[[nodiscard]] std::vector<SuperpageRun> decompose_superpages(
    std::span<const simkern::Pfn> pfns, std::uint8_t max_order);

}  // namespace vialock::via
