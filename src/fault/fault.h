// fault.h - deterministic fault injection for the whole simulation.
//
// The paper's locktest provokes exactly one failure (the swapper relocating
// registered pages); everything else in the substrate was assumed perfect.
// This subsystem makes the other failure modes injectable - swap I/O errors
// and latency spikes, allocation failure under pressure, kiobuf map refusal,
// NIC doorbell drops, DMA bit-flips, TPT corruption/eviction, wire drops and
// connection resets - so the transport's reliability layer has something to
// survive and the chaos experiments have something to measure.
//
// Everything is seed-driven and replayable: a FaultPlan (seed + rules) fed
// to a FaultEngine produces the *identical* schedule of injected faults on
// every run, because the simulation itself is deterministic and each rule
// draws from its own SplitMix64-derived stream. The engine keeps a journal
// of every injection; two runs agree iff their journals are byte-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sync/mutex.h"
#include "sync/policy.h"
#include "util/clock.h"
#include "util/rng.h"

namespace vialock {
class TraceRing;
}

namespace vialock::fault {

/// Where in the substrate a rule can fire. Each hook site reports every
/// event it sees (a swap write, a doorbell ring, ...) to the engine, which
/// counts it and matches rules against it.
enum class FaultSite : std::uint8_t {
  SwapRead,     ///< rw_swap_page(READ): fail (EIO), delay, corrupt page data
  SwapWrite,    ///< rw_swap_page(WRITE): fail, delay, corrupt stored page
  BuddyAlloc,   ///< get_free_pages(): fail (allocation refused)
  KiobufMap,    ///< map_user_kiobuf(): fail (transient EAGAIN)
  NicDoorbell,  ///< post_send doorbell: drop (descriptor silently lost)
  NicDma,       ///< DMA engine gather: corrupt (bit-flip in flight), delay
  TptWrite,     ///< program_tpt(): corrupt (pfn bit-flip) or fail (evict)
  Wire,         ///< fabric transmit: drop (packet lost after send completes)
  Connection,   ///< fabric transmit: fail (connection reset, both VIs break)
  PinAdmission, ///< PinGovernor::charge(): fail (spurious quota-check race)
  PinReclaim,   ///< PinGovernor::on_memory_pressure(): drop (reclaim pass fails)
  TptAlloc,     ///< Tpt::alloc via the kernel agent: fail (table claim refused)
};

inline constexpr std::size_t kNumFaultSites = 12;

[[nodiscard]] constexpr std::string_view to_string(FaultSite s) {
  switch (s) {
    case FaultSite::SwapRead: return "swap-read";
    case FaultSite::SwapWrite: return "swap-write";
    case FaultSite::BuddyAlloc: return "buddy-alloc";
    case FaultSite::KiobufMap: return "kiobuf-map";
    case FaultSite::NicDoorbell: return "nic-doorbell";
    case FaultSite::NicDma: return "nic-dma";
    case FaultSite::TptWrite: return "tpt-write";
    case FaultSite::Wire: return "wire";
    case FaultSite::Connection: return "connection";
    case FaultSite::PinAdmission: return "pin-admission";
    case FaultSite::PinReclaim: return "pin-reclaim";
    case FaultSite::TptAlloc: return "tpt-alloc";
  }
  return "?";
}

/// What an armed rule does to the event it matched. Hook sites interpret the
/// action in site-appropriate terms (see FaultSite comments); a site that
/// cannot express an action ignores the decision.
enum class FaultAction : std::uint8_t {
  Fail,     ///< operation returns an error status
  Delay,    ///< operation succeeds but charges extra virtual time
  Corrupt,  ///< operation succeeds but data is bit-flipped
  Drop,     ///< operation vanishes silently (no error, no effect)
};

[[nodiscard]] constexpr std::string_view to_string(FaultAction a) {
  switch (a) {
    case FaultAction::Fail: return "fail";
    case FaultAction::Delay: return "delay";
    case FaultAction::Corrupt: return "corrupt";
    case FaultAction::Drop: return "drop";
  }
  return "?";
}

/// One trigger: fire `action` at `site`, for events inside the window
/// [after_events, +inf) x [not_before, not_after], with probability
/// `probability` per event, at most `max_triggers` times overall.
struct FaultRule {
  FaultSite site = FaultSite::Wire;
  FaultAction action = FaultAction::Drop;
  double probability = 1.0;        ///< per-event Bernoulli (1.0 = always)
  std::uint64_t after_events = 0;  ///< skip the first N events at this site
  std::uint64_t max_triggers = UINT64_MAX;
  Nanos not_before = 0;            ///< simulated-time window start
  Nanos not_after = UINT64_MAX;    ///< simulated-time window end
  Nanos delay = 100'000;           ///< extra virtual time (Delay action)
  std::uint64_t corrupt_mask = 0x01;  ///< XOR mask applied by Corrupt
};

/// A complete, replayable chaos schedule: the seed fixes every random draw.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  FaultPlan& add(FaultRule rule) {
    rules.push_back(rule);
    return *this;
  }
};

/// What a hook site must do for the matched event.
struct FaultDecision {
  FaultAction action = FaultAction::Fail;
  Nanos delay = 0;              ///< Delay: charge this much virtual time
  std::uint64_t corrupt_mask = 0;  ///< Corrupt: XOR this into the data
  std::uint64_t entropy = 0;    ///< deterministic per-trigger draw (e.g. to
                                ///< pick which byte of a payload to flip)
  std::size_t rule_index = 0;
};

struct FaultStats {
  std::uint64_t events_seen[kNumFaultSites] = {};
  std::uint64_t faults_injected[kNumFaultSites] = {};

  [[nodiscard]] std::uint64_t seen(FaultSite s) const {
    return events_seen[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t injected(FaultSite s) const {
    return faults_injected[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t total_injected() const {
    std::uint64_t sum = 0;
    for (const auto v : faults_injected) sum += v;
    return sum;
  }
};

/// The engine: hook sites call check(site); a non-empty decision means the
/// event is faulted. Deterministic given (plan, query sequence): each rule
/// owns an Rng derived from plan.seed and its index, so adding a rule never
/// perturbs the draws of the others.
class FaultEngine {
 public:
  struct JournalEntry {
    Nanos when = 0;
    FaultSite site = FaultSite::Wire;
    FaultAction action = FaultAction::Drop;
    std::uint64_t event_index = 0;  ///< which event at this site (0-based)
    std::size_t rule_index = 0;

    [[nodiscard]] std::string to_string() const;
  };

  FaultEngine(FaultPlan plan, const Clock& clock);

  /// Report one event at `site`; a decision means "inject". At most one rule
  /// fires per event (first match in plan order wins).
  [[nodiscard]] std::optional<FaultDecision> check(FaultSite site);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const std::vector<JournalEntry>& journal() const {
    return journal_;
  }
  /// The whole schedule as text - byte-identical across same-seed runs.
  [[nodiscard]] std::string schedule_string() const;

  /// Mirror injections into a kernel trace ring as FaultInjected events
  /// (addr = site, pfn = rule index), for post-mortem dumps.
  void mirror_to(TraceRing* trace) { trace_ = trace; }

  /// Execution mode: threaded serializes check() (the rule RNG streams and
  /// the journal are shared state). Note the *sequence* of draws then
  /// depends on worker interleaving, so threaded chaos runs are compared on
  /// invariants, not on exact injection schedules (DESIGN.md section 15).
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

 private:
  sync::Mutex mu_;
  FaultPlan plan_;
  const Clock& clock_;
  std::vector<Rng> rule_rngs_;   ///< one independent stream per rule
  std::vector<std::uint64_t> rule_triggers_;
  FaultStats stats_;
  std::vector<JournalEntry> journal_;
  TraceRing* trace_ = nullptr;
};

/// FNV-1a 32-bit checksum - the transport's eager-frame and payload
/// integrity check (cheap, deterministic, good avalanche for bit-flips).
[[nodiscard]] constexpr std::uint32_t checksum32(
    std::span<const std::byte> data) {
  std::uint32_t h = 0x811C9DC5u;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint32_t>(b);
    h *= 0x01000193u;
  }
  return h;
}

}  // namespace vialock::fault
