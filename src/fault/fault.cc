#include "fault/fault.h"

#include <sstream>

#include "util/trace.h"

namespace vialock::fault {

std::string FaultEngine::JournalEntry::to_string() const {
  std::ostringstream os;
  os << when << "ns " << vialock::fault::to_string(site) << "#" << event_index
     << " -> " << vialock::fault::to_string(action) << " (rule " << rule_index
     << ")";
  return os.str();
}

FaultEngine::FaultEngine(FaultPlan plan, const Clock& clock)
    : plan_(std::move(plan)), clock_(clock) {
  rule_rngs_.reserve(plan_.rules.size());
  rule_triggers_.assign(plan_.rules.size(), 0);
  // Derive one independent stream per rule: adding or reordering *other*
  // rules must not disturb a rule's draws, or schedules would not be
  // comparable across plan edits.
  SplitMix64 sm(plan_.seed);
  const std::uint64_t base = sm.next();
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    rule_rngs_.emplace_back(base ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
  }
}

std::optional<FaultDecision> FaultEngine::check(FaultSite site) {
  sync::Guard g(mu_);
  const auto si = static_cast<std::size_t>(site);
  const std::uint64_t event_index = stats_.events_seen[si]++;
  const Nanos now = clock_.now();

  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.site != site) continue;
    if (event_index < rule.after_events) continue;
    if (rule_triggers_[r] >= rule.max_triggers) continue;
    if (now < rule.not_before || now > rule.not_after) continue;
    // The Bernoulli draw is consumed even when it fails, so a rule's stream
    // position depends only on how many eligible events it has examined.
    if (rule.probability < 1.0 && !rule_rngs_[r].chance(rule.probability)) {
      continue;
    }

    ++rule_triggers_[r];
    ++stats_.faults_injected[si];
    journal_.push_back(JournalEntry{now, site, rule.action, event_index, r});
    if (trace_) {
      trace_->record(now, TraceEvent::FaultInjected, /*pid=*/0,
                     /*addr=*/static_cast<std::uint64_t>(si),
                     /*pfn=*/static_cast<std::uint32_t>(r));
    }

    FaultDecision d;
    d.action = rule.action;
    d.delay = rule.delay;
    d.corrupt_mask = rule.corrupt_mask;
    d.entropy = rule_rngs_[r].next();
    d.rule_index = r;
    return d;
  }
  return std::nullopt;
}

std::string FaultEngine::schedule_string() const {
  std::ostringstream os;
  for (const JournalEntry& e : journal_) os << e.to_string() << "\n";
  return os.str();
}

}  // namespace vialock::fault
