// arena.h - reusable byte-buffer arena for per-transfer bookkeeping.
//
// The transport and service tiers used to materialise a fresh
// std::vector<std::byte> for every frame build, checksum verify, and staging
// copy - malloc/free churn on the hottest host path, invisible to virtual
// time but dominating wall-clock at E5/E24 scale. A BufferArena keeps a
// small stack of buffers whose *capacity* survives between transfers: a
// lease resizes (never reallocates, once warm) and returns the buffer to the
// arena at scope exit. Leases nest - the transport's rendezvous path builds
// a control frame while a payload buffer is live - and the stack discipline
// matches the strictly nested lifetimes of per-transfer scratch data.
//
// Purely a host-side optimisation: no simulated cost, no effect on virtual
// time or any deterministic report.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vialock::util {

class BufferArena {
 public:
  /// RAII lease of one arena buffer, sized to `size` (contents zeroed).
  /// Returns the buffer to the arena at destruction; leases must unwind in
  /// LIFO order (scope nesting gives this for free).
  class Lease {
   public:
    Lease(BufferArena& arena, std::size_t size) : arena_(arena) {
      buf_ = &arena_.push(size);
    }
    ~Lease() { arena_.pop(buf_); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] std::vector<std::byte>& operator*() { return *buf_; }
    [[nodiscard]] std::vector<std::byte>* operator->() { return buf_; }
    [[nodiscard]] std::vector<std::byte>& get() { return *buf_; }

   private:
    BufferArena& arena_;
    std::vector<std::byte>* buf_;
  };

  [[nodiscard]] Lease lease(std::size_t size) { return Lease(*this, size); }

  /// Buffers ever materialised (the arena's footprint high-water mark).
  [[nodiscard]] std::size_t depth_high_water() const { return stack_.size(); }
  /// Total leases served (each one a vector allocation in the old scheme).
  [[nodiscard]] std::uint64_t leases() const { return leases_; }

 private:
  std::vector<std::byte>& push(std::size_t size) {
    // Outstanding leases hold pointers into stack_, so it must never
    // reallocate while one is live: capacity is reserved up front and the
    // nesting depth bounded (real nesting is 2-3 deep).
    assert(depth_ < kMaxDepth && "BufferArena nesting too deep");
    if (depth_ == stack_.size()) stack_.emplace_back();
    std::vector<std::byte>& b = stack_[depth_++];
    ++leases_;
    b.assign(size, std::byte{0});  // resize + clear; capacity is retained
    return b;
  }
  void pop(std::vector<std::byte>* buf) {
    assert(depth_ > 0 && buf == &stack_[depth_ - 1] &&
           "BufferArena leases must unwind in LIFO order");
    (void)buf;
    --depth_;
  }

  static constexpr std::size_t kMaxDepth = 64;

  static std::vector<std::vector<std::byte>> make_stack() {
    std::vector<std::vector<std::byte>> s;
    s.reserve(kMaxDepth);
    return s;
  }

  std::vector<std::vector<std::byte>> stack_ = make_stack();
  std::size_t depth_ = 0;
  std::uint64_t leases_ = 0;
};

}  // namespace vialock::util
