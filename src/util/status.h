// status.h - errno-style status codes used across the simulated kernel boundary.
//
// The simulated Linux kernel (simkern) and the VIA kernel agent never throw:
// every fallible entry point returns a KStatus, mirroring how a real driver
// reports errors to user space. [[nodiscard]] forces callers to look at it.
#pragma once

#include <cstdint>
#include <string_view>

namespace vialock {

/// errno-style result of a simulated kernel or driver operation.
enum class KStatus : std::int8_t {
  Ok = 0,
  Perm,        ///< EPERM   - capability check failed (e.g. mlock without CAP_IPC_LOCK)
  NoEnt,       ///< ENOENT  - no such object (handle, task, region)
  Again,       ///< EAGAIN  - transient resource shortage
  NoMem,       ///< ENOMEM  - out of frames / swap / table entries
  Fault,       ///< EFAULT  - bad user address (no VMA, protection violation)
  Busy,        ///< EBUSY   - object in use (page locked by kernel I/O)
  Inval,       ///< EINVAL  - malformed arguments
  NoSpc,       ///< ENOSPC  - table full (TPT, swap map)
  Proto,       ///< EPROTO  - VIA protocol violation (bad state transition)
  NoLck,       ///< ENOLCK  - lock accounting underflow / unlock of unlocked range
  Io,          ///< EIO     - device I/O error (injected swap/disk failure)
  TimedOut,    ///< ETIMEDOUT - reliable-delivery retries exhausted
};

[[nodiscard]] constexpr bool ok(KStatus s) { return s == KStatus::Ok; }

[[nodiscard]] constexpr std::string_view to_string(KStatus s) {
  switch (s) {
    case KStatus::Ok: return "OK";
    case KStatus::Perm: return "EPERM";
    case KStatus::NoEnt: return "ENOENT";
    case KStatus::Again: return "EAGAIN";
    case KStatus::NoMem: return "ENOMEM";
    case KStatus::Fault: return "EFAULT";
    case KStatus::Busy: return "EBUSY";
    case KStatus::Inval: return "EINVAL";
    case KStatus::NoSpc: return "ENOSPC";
    case KStatus::Proto: return "EPROTO";
    case KStatus::NoLck: return "ENOLCK";
    case KStatus::Io: return "EIO";
    case KStatus::TimedOut: return "ETIMEDOUT";
  }
  return "E???";
}

}  // namespace vialock
