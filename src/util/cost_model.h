// cost_model.h - virtual-time costs of the simulated platform.
//
// Constants are loosely calibrated to the paper family's test bed (450 MHz
// Pentium III, 33 MHz/32-bit PCI, 2000-era IDE/SCSI swap disk, Dolphin D310 /
// Giganet cLAN class NICs). Benchmarks report event counts (platform-free) as
// well as virtual times; only the *shape* of timing results is meaningful.
// All values are overridable per-simulation so ablations can sweep them.
#pragma once

#include <cstdint>

#include "util/clock.h"

namespace vialock {

struct CostModel {
  // --- CPU / memory system -------------------------------------------------
  Nanos cycle = 2;                 ///< ~450 MHz
  Nanos mem_copy_per_byte = 6;     ///< ~160 MB/s effective memcpy (PC100 SDRAM)
  Nanos mem_touch = 180;           ///< single cache-missing word access
  Nanos zero_page = 10'000;        ///< clear one 4 KB page

  // --- kernel paths ----------------------------------------------------------
  Nanos syscall = 900;             ///< int 0x80 entry + exit
  Nanos pte_walk_level = 30;       ///< one page-table level lookup
  Nanos fault_entry = 1'400;       ///< trap + find_vma + dispatch
  Nanos vma_op = 700;              ///< split/merge/insert one vm_area_struct
  Nanos page_alloc = 600;          ///< buddy allocator hit
  Nanos reclaim_scan_page = 90;    ///< clock-algorithm look at one page map entry
  Nanos kiobuf_setup = 1'100;      ///< alloc_kiovec bookkeeping
  Nanos kiobuf_per_page = 260;     ///< map_user_kiobuf per-page pin + record

  // --- pin governor (src/pinmgr) ----------------------------------------------
  Nanos pin_admission = 150;       ///< quota lookup + tier admission check
  Nanos pin_account_frame = 25;    ///< per-frame charge/uncharge bookkeeping
  Nanos pin_lazy_queue = 120;      ///< user-level append to the deferred-dereg ring

  // --- swap device -----------------------------------------------------------
  Nanos swap_seek = 6'000'000;     ///< disk seek + rotational latency (~6 ms)
  Nanos swap_per_byte = 60;        ///< ~16 MB/s streaming to swap partition

  // --- NIC / PCI -------------------------------------------------------------
  Nanos pci_reg_write = 120;       ///< posted write to a NIC register (TPT entry, doorbell)
  Nanos pci_reg_read = 900;        ///< PCI read (flushes posting)
  Nanos doorbell = 250;            ///< ring a doorbell (user-space store)
  Nanos dma_startup = 1'000;       ///< descriptor fetch + engine start
  Nanos dma_per_byte = 13;         ///< ~75 MB/s PCI DMA streaming
  Nanos descriptor_build = 400;    ///< user library fills a descriptor
  Nanos nic_page_fault = 18'000;   ///< U-Net/MM-style NIC fault: interrupt +
                                   ///< driver handler (excl. any page-in)
  Nanos interrupt_wakeup = 11'000; ///< waiting-mode completion: interrupt +
                                   ///< scheduler reawakening the process

  // --- wire (node-to-node link) ----------------------------------------------
  Nanos wire_latency = 1'800;      ///< cLAN-class switch + serdes
  Nanos wire_per_byte = 8;         ///< ~125 MB/s raw link
  /// End-to-end streaming rate of a descriptor transfer (source DMA, wire
  /// and sink DMA are cut-through pipelined; the slowest stage governs):
  /// ~87 MB/s, cLAN/D310 class.
  Nanos dma_path_per_byte = 11;

  // --- SCI-style programmed I/O (remote memory window) -------------------------
  Nanos pio_store_latency = 300;   ///< posted remote store overhead per access
  Nanos pio_per_byte = 12;         ///< ~80 MB/s sustained remote stores
  Nanos pio_read_rtt = 4'600;      ///< remote read round trip ("expensive")

  [[nodiscard]] constexpr Nanos copy(std::uint64_t bytes) const {
    return mem_copy_per_byte * bytes;
  }
  [[nodiscard]] constexpr Nanos swap_io(std::uint64_t bytes) const {
    return swap_seek + swap_per_byte * bytes;
  }
  [[nodiscard]] constexpr Nanos dma(std::uint64_t bytes) const {
    return dma_startup + dma_per_byte * bytes;
  }
  [[nodiscard]] constexpr Nanos wire(std::uint64_t bytes) const {
    return wire_latency + wire_per_byte * bytes;
  }
};

}  // namespace vialock
