// flags.h - type-safe bit-flag operations for enum class flag sets.
#pragma once

#include <type_traits>

namespace vialock {

/// Opt-in trait: specialize to `true` to enable bit operators for an enum class.
template <typename E>
inline constexpr bool enable_flag_ops = false;

template <typename E>
concept FlagEnum = std::is_enum_v<E> && enable_flag_ops<E>;

template <FlagEnum E>
constexpr E operator|(E a, E b) {
  using U = std::underlying_type_t<E>;
  return static_cast<E>(static_cast<U>(a) | static_cast<U>(b));
}

template <FlagEnum E>
constexpr E operator&(E a, E b) {
  using U = std::underlying_type_t<E>;
  return static_cast<E>(static_cast<U>(a) & static_cast<U>(b));
}

template <FlagEnum E>
constexpr E operator~(E a) {
  using U = std::underlying_type_t<E>;
  return static_cast<E>(~static_cast<U>(a));
}

template <FlagEnum E>
constexpr E& operator|=(E& a, E b) {
  return a = a | b;
}

template <FlagEnum E>
constexpr E& operator&=(E& a, E b) {
  return a = a & b;
}

/// True if any bit of `bit` is set in `set`.
template <FlagEnum E>
[[nodiscard]] constexpr bool has(E set, E bit) {
  using U = std::underlying_type_t<E>;
  return (static_cast<U>(set) & static_cast<U>(bit)) != 0;
}

}  // namespace vialock
