// extent_map.h - an ordered free-extent index for address-space allocators.
//
// Replaces the O(capacity) bitmap scans on the host's allocation hot paths
// (NIC TPT slots, VMA gap placement) with a start-keyed map of maximal free
// extents: allocation walks free *extents* in address order (first-fit over
// fragments, not over every slot) and release coalesces with both
// neighbours, so the extent count stays bounded by the fragmentation of the
// space, never by its size. The address-ordered walk makes the allocator
// produce bit-identical placements to the classic first-fit bitmap scan -
// the property every deterministic experiment (E1-E22) relies on. The shape
// follows the range-indexed address-space structures of "Scalable Range
// Locks for Scalable Address Spaces and Beyond" (Kogan, Dice, Issa), scaled
// down to a single-owner simulator: one ordered map, no per-extent locks.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>

namespace vialock {

/// Ordered set of maximal, non-adjacent free extents over [0, universe).
/// `Index` is the address type (TptIndex, simkern::VAddr, ...); `Length`
/// the extent-size type. All lengths are > 0; extents never touch (release
/// coalesces eagerly), so `free_.size()` equals the number of free holes.
template <typename Index, typename Length = Index>
class ExtentMap {
 public:
  ExtentMap() = default;
  /// Start fully free over [0, universe).
  explicit ExtentMap(Length universe) {
    if (universe > 0) free_.emplace(Index{0}, universe);
  }

  /// Lowest start of a free extent of at least `len`, in address order
  /// (first-fit). O(#extents) worst case, O(1) for the unfragmented common
  /// case; does not reserve.
  [[nodiscard]] std::optional<Index> find_first_fit(Length len) const {
    if (len == 0) return std::nullopt;
    for (const auto& [start, elen] : free_) {
      if (elen >= len) return start;
    }
    return std::nullopt;
  }

  /// Lowest addr >= `lo` with [addr, addr+len) entirely free. Walks free
  /// extents from the one straddling `lo` upward; extents below `lo` are
  /// never touched, so the cost is O(log n + extents actually inspected).
  [[nodiscard]] std::optional<Index> find_first_fit_from(Index lo,
                                                         Length len) const {
    if (len == 0) return std::nullopt;
    auto it = free_.upper_bound(lo);
    if (it != free_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second > lo) it = prev;  // straddles lo
    }
    for (; it != free_.end(); ++it) {
      const Index candidate = it->first > lo ? it->first : lo;
      if (it->first + it->second >= candidate + len) return candidate;
    }
    return std::nullopt;
  }

  /// True iff [start, start+len) lies entirely inside one free extent.
  [[nodiscard]] bool is_free(Index start, Length len) const {
    if (len == 0) return true;
    auto it = free_.upper_bound(start);
    if (it == free_.begin()) return false;
    --it;
    return it->first <= start && start + len <= it->first + it->second;
  }

  /// Carve [start, start+len) out of the free set. The range must be free
  /// (checked); splits the containing extent into up to two remainders.
  void reserve(Index start, Length len) {
    if (len == 0) return;
    auto it = free_.upper_bound(start);
    assert(it != free_.begin() && "reserve of non-free range");
    --it;
    const Index estart = it->first;
    const Length elen = it->second;
    assert(estart <= start && start + len <= estart + elen &&
           "reserve of non-free range");
    free_.erase(it);
    if (start > estart) free_.emplace(estart, static_cast<Length>(start - estart));
    if (estart + elen > start + len)
      free_.emplace(static_cast<Index>(start + len),
                    static_cast<Length>(estart + elen - (start + len)));
  }

  /// Return [start, start+len) to the free set, coalescing with adjacent
  /// extents. The range must currently be reserved (checked in debug).
  void release(Index start, Length len) {
    if (len == 0) return;
    assert(!overlaps_free(start, len) && "double free");
    Index nstart = start;
    Length nlen = len;
    auto next = free_.upper_bound(start);
    if (next != free_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second == start) {  // merge left
        nstart = prev->first;
        nlen = static_cast<Length>(nlen + prev->second);
        next = free_.erase(prev);
      }
    }
    if (next != free_.end() && next->first == start + len) {  // merge right
      nlen = static_cast<Length>(nlen + next->second);
      free_.erase(next);
    }
    free_.emplace(nstart, nlen);
  }

  /// Number of free holes (fragmentation metric for /proc exports).
  [[nodiscard]] std::size_t extent_count() const { return free_.size(); }

  /// Total free units.
  [[nodiscard]] Length total_free() const {
    Length sum{0};
    for (const auto& [start, len] : free_) sum = static_cast<Length>(sum + len);
    return sum;
  }

  /// Largest single free extent (what the biggest allocation could get).
  [[nodiscard]] Length largest_extent() const {
    Length best{0};
    for (const auto& [start, len] : free_)
      if (len > best) best = len;
    return best;
  }

  template <typename Fn>
  void for_each_free(Fn&& fn) const {
    for (const auto& [start, len] : free_) fn(start, len);
  }

 private:
  [[nodiscard]] bool overlaps_free(Index start, Length len) const {
    auto it = free_.upper_bound(start);
    if (it != free_.end() && it->first < start + len) return true;
    if (it == free_.begin()) return false;
    --it;
    return it->first + it->second > start;
  }

  std::map<Index, Length> free_;  ///< start -> length, maximal, non-adjacent
};

}  // namespace vialock
