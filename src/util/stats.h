// stats.h - streaming summary statistics and fixed-bucket histograms.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace vialock {

/// Welford streaming accumulator: count / mean / variance / min / max.
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double total() const { return mean_ * static_cast<double>(n_); }

  void merge(const Summary& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double d = other.mean_ - mean_;
    mean_ += d * nb / (na + nb);
    m2_ += other.m2_ + d * d * na * nb / (na + nb);
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log2-bucketed histogram for latency-like quantities.
class Log2Histogram {
 public:
  void add(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Value at quantile q in [0,1]; returns the upper bound of the bucket.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > target) return upper_bound(i);
    }
    return upper_bound(kBuckets - 1);
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  static constexpr std::size_t num_buckets() { return kBuckets; }

  static constexpr std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    return static_cast<std::size_t>(64 - __builtin_clzll(v));
  }
  static constexpr std::uint64_t upper_bound(std::size_t i) {
    return i == 0 ? 0 : (i >= 64 ? ~0ULL : (1ULL << i) - 1);
  }

 private:
  static constexpr std::size_t kBuckets = 65;
  std::uint64_t buckets_[kBuckets]{};
  std::uint64_t count_ = 0;
};

}  // namespace vialock
