// table.h - fixed-width ASCII table printer for experiment output.
//
// Every bench binary reproduces a paper table/figure by printing rows through
// this printer, so `bench_output.txt` is directly comparable to the paper.
#pragma once

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace vialock {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  Table& row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths_[i] = std::max(widths_[i], cells[i].size());
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    print_rule(os);
    print_row(os, headers_);
    print_rule(os);
    for (const auto& r : rows_) print_row(os, r);
    print_rule(os);
  }

  // -- cell formatting helpers -----------------------------------------------
  static std::string num(std::uint64_t v) { return std::to_string(v); }
  static std::string num(std::int64_t v) { return std::to_string(v); }
  static std::string fp(double v, int prec = 2) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << v;
    return ss.str();
  }
  /// Virtual nanoseconds with a human unit.
  static std::string nanos(std::uint64_t ns) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(2);
    if (ns < 10'000ULL) ss << ns << " ns";
    else if (ns < 10'000'000ULL) ss << static_cast<double>(ns) / 1e3 << " us";
    else if (ns < 10'000'000'000ULL) ss << static_cast<double>(ns) / 1e6 << " ms";
    else ss << static_cast<double>(ns) / 1e9 << " s";
    return ss.str();
  }
  /// Bytes with a human unit.
  static std::string bytes(std::uint64_t b) {
    std::ostringstream ss;
    if (b < 1024) ss << b << " B";
    else if (b < 1024 * 1024) ss << b / 1024 << " KB";
    else ss << b / (1024 * 1024) << " MB";
    return ss.str();
  }
  /// MB/s from bytes over virtual nanoseconds.
  static std::string rate(std::uint64_t b, std::uint64_t ns) {
    if (ns == 0) return "inf";
    const double mbps = static_cast<double>(b) * 1e9 / static_cast<double>(ns) /
                        (1024.0 * 1024.0);
    return fp(mbps, 2) + " MB/s";
  }

  // -- structured access (machine-readable export) ---------------------------
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  void print_rule(std::ostream& os) const {
    os << '+';
    for (auto w : widths_) os << std::string(w + 2, '-') << '+';
    os << '\n';
  }
  void print_row(std::ostream& os, const std::vector<std::string>& cells) const {
    os << '|';
    for (std::size_t i = 0; i < widths_.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(widths_[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vialock
