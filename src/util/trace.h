// trace.h - a fixed-size event ring for post-mortem debugging.
//
// The simulated kernel records its interesting transitions (faults,
// swap-outs, pins, registrations) here when tracing is enabled; tests and
// tools can dump the tail to see *why* a page moved. Zero allocation after
// construction; disabled tracing is a single branch.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sync/mutex.h"
#include "sync/policy.h"
#include "util/clock.h"

namespace vialock {

enum class TraceEvent : std::uint8_t {
  MinorFault,
  MajorFault,
  CowBreak,
  SwapOut,
  SwapIn,
  PagePinned,
  PageUnpinned,
  TptProgram,
  TptInvalidate,
  RegionRegistered,
  RegionDeregistered,
  KernelIoStart,
  KernelIoEnd,
  FaultInjected,   ///< fault engine fired a rule (addr = site, pfn = rule)
  DmaCorrupted,    ///< NIC DMA payload bit-flipped in flight
  SendRetry,       ///< reliable channel retransmitted a frame
  SendTimeout,     ///< reliable channel charged a retransmit timeout
  PinCharged,      ///< governor charged a registration (addr = pages, pfn = host total)
  PinUncharged,    ///< governor released a charge (addr = pages, pfn = host total)
  PinRejected,     ///< governor refused admission (addr = pages requested)
  LazyDeregQueued, ///< deregistration deferred to the governor (addr = reg id)
  LazyDeregDrained,///< deferred-dereg queue drained (addr = entries, pfn = pages)
  PinReclaimed,    ///< cooperative reclaim pass (addr = pages released)
  SpanBegin,       ///< obs::SpanRecorder opened a span (pid = track, addr = id)
  SpanEnd,         ///< obs::SpanRecorder closed a span (pid = track, addr = id)
};

[[nodiscard]] constexpr std::string_view to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::MinorFault: return "minor-fault";
    case TraceEvent::MajorFault: return "major-fault";
    case TraceEvent::CowBreak: return "cow-break";
    case TraceEvent::SwapOut: return "swap-out";
    case TraceEvent::SwapIn: return "swap-in";
    case TraceEvent::PagePinned: return "pin";
    case TraceEvent::PageUnpinned: return "unpin";
    case TraceEvent::TptProgram: return "tpt-program";
    case TraceEvent::TptInvalidate: return "tpt-invalidate";
    case TraceEvent::RegionRegistered: return "register";
    case TraceEvent::RegionDeregistered: return "deregister";
    case TraceEvent::KernelIoStart: return "io-start";
    case TraceEvent::KernelIoEnd: return "io-end";
    case TraceEvent::FaultInjected: return "fault-injected";
    case TraceEvent::DmaCorrupted: return "dma-corrupted";
    case TraceEvent::SendRetry: return "send-retry";
    case TraceEvent::SendTimeout: return "send-timeout";
    case TraceEvent::PinCharged: return "pin-charged";
    case TraceEvent::PinUncharged: return "pin-uncharged";
    case TraceEvent::PinRejected: return "pin-rejected";
    case TraceEvent::LazyDeregQueued: return "lazy-dereg-queued";
    case TraceEvent::LazyDeregDrained: return "lazy-dereg-drained";
    case TraceEvent::PinReclaimed: return "pin-reclaimed";
    case TraceEvent::SpanBegin: return "span-begin";
    case TraceEvent::SpanEnd: return "span-end";
  }
  return "?";
}

class TraceRing {
 public:
  struct Entry {
    Nanos when = 0;
    TraceEvent event = TraceEvent::MinorFault;
    std::uint32_t pid = 0;
    std::uint64_t addr = 0;  ///< virtual address or table index
    std::uint32_t pfn = 0;

    [[nodiscard]] std::string to_string() const {
      return std::to_string(when) + "ns " +
             std::string(vialock::to_string(event)) + " pid=" +
             std::to_string(pid) + " addr=0x" + hex(addr) + " pfn=" +
             std::to_string(pfn);
    }

   private:
    static std::string hex(std::uint64_t v) {
      static constexpr char kDigits[] = "0123456789abcdef";
      std::string out;
      do {
        out.insert(out.begin(), kDigits[v & 0xF]);
        v >>= 4;
      } while (v);
      return out;
    }
  };

  explicit TraceRing(std::size_t capacity = 1024) : ring_(capacity) {}

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Execution mode: threaded serializes record() (disabled tracing stays a
  /// single branch either way); serial keeps the lock a no-op.
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

  void record(Nanos when, TraceEvent event, std::uint32_t pid,
              std::uint64_t addr, std::uint32_t pfn) {
    if (!enabled_) return;
    sync::Guard g(mu_);
    ring_[head_] = Entry{when, event, pid, addr, pfn};
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size()) ++count_;
  }

  /// Oldest-to-newest snapshot of the recorded tail.
  [[nodiscard]] std::vector<Entry> tail(std::size_t max_entries = SIZE_MAX) const {
    std::vector<Entry> out;
    const std::size_t n = std::min(count_, max_entries);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = (head_ + ring_.size() - n + i) % ring_.size();
      out.push_back(ring_[idx]);
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  std::vector<Entry> ring_;
  mutable sync::Mutex mu_;  ///< serializes record() in threaded mode
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool enabled_ = false;
};

}  // namespace vialock
