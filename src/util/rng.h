// rng.h - small deterministic PRNG (SplitMix64 + xoshiro256**) for workloads.
//
// We avoid <random> engines in hot workload generators: their state is large
// and their distributions are implementation-defined, which would make
// experiment streams differ across standard libraries. These generators are
// bit-for-bit reproducible everywhere.
#pragma once

#include <cstdint>

namespace vialock {

/// SplitMix64: seeds the main generator, also usable standalone.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (bound > 0).
  constexpr std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace vialock
