// clock.h - deterministic virtual time base for the whole simulation.
//
// Every component (memory subsystem, swap device, NIC DMA engine, wire) charges
// its costs against one shared Clock, so experiment timings are exactly
// reproducible run-to-run and independent of the host machine.
#pragma once

#include <cstdint>

namespace vialock {

/// Virtual nanoseconds.
using Nanos = std::uint64_t;

/// Monotonic virtual clock. Components advance() it by modelled costs.
class Clock {
 public:
  Clock() = default;

  /// Charge `cost` virtual nanoseconds.
  void advance(Nanos cost) { now_ += cost; }

  [[nodiscard]] Nanos now() const { return now_; }

  /// Reset to t=0 (used between benchmark repetitions).
  void reset() { now_ = 0; }

 private:
  Nanos now_ = 0;
};

/// Scoped stopwatch over a Clock: measures virtual time spent in a region.
class VirtualStopwatch {
 public:
  explicit VirtualStopwatch(const Clock& clock) : clock_(clock), start_(clock.now()) {}

  [[nodiscard]] Nanos elapsed() const { return clock_.now() - start_; }

 private:
  const Clock& clock_;
  Nanos start_;
};

}  // namespace vialock
