// clock.h - deterministic virtual time base for the whole simulation.
//
// Every component (memory subsystem, swap device, NIC DMA engine, wire) charges
// its costs against one shared Clock, so experiment timings are exactly
// reproducible run-to-run and independent of the host machine.
//
// Threaded execution (DESIGN.md section 15) keeps the same model: the global
// total stays exact under concurrent advance() because it is a relaxed atomic,
// and each thread additionally accumulates the costs *it* charged into a
// thread-local meter. A ThreadCostMeter measures that per-thread delta, which
// is what an event body costs regardless of what other workers charge
// concurrently; in a single-threaded run it equals the VirtualStopwatch delta
// exactly.
#pragma once

#include <atomic>
#include <cstdint>

namespace vialock {

/// Virtual nanoseconds.
using Nanos = std::uint64_t;

/// Monotonic virtual clock. Components advance() it by modelled costs.
class Clock {
 public:
  Clock() = default;

  /// Charge `cost` virtual nanoseconds.
  void advance(Nanos cost) {
    now_.fetch_add(cost, std::memory_order_relaxed);
    thread_charged() += cost;
  }

  [[nodiscard]] Nanos now() const {
    return now_.load(std::memory_order_relaxed);
  }

  /// Reset to t=0 (used between benchmark repetitions).
  void reset() { now_.store(0, std::memory_order_relaxed); }

  /// Total cost the *calling thread* has charged (any clock; threads never
  /// interleave clocks mid-measurement).
  [[nodiscard]] static Nanos& thread_charged() {
    thread_local Nanos charged = 0;
    return charged;
  }

 private:
  std::atomic<Nanos> now_{0};
};

/// Scoped stopwatch over a Clock: measures virtual time spent in a region.
/// Reads the global total - only meaningful where a single thread runs.
class VirtualStopwatch {
 public:
  explicit VirtualStopwatch(const Clock& clock) : clock_(clock), start_(clock.now()) {}

  [[nodiscard]] Nanos elapsed() const { return clock_.now() - start_; }

 private:
  const Clock& clock_;
  Nanos start_;
};

/// Scoped cost meter over the calling thread's charges: measures the virtual
/// cost this thread incurred in a region, unaffected by concurrent workers.
/// Single-threaded it equals VirtualStopwatch over the shared clock.
class ThreadCostMeter {
 public:
  ThreadCostMeter() : start_(Clock::thread_charged()) {}

  [[nodiscard]] Nanos elapsed() const {
    return Clock::thread_charged() - start_;
  }

 private:
  Nanos start_;
};

}  // namespace vialock
