// wire.h - POD wire-format helpers shared by the message layer and the
// service tier.
//
// Every protocol in the tree ships trivially-copyable control structs
// through eager slots: the reliable transport's FrameHeader and rendezvous
// handshake (RndzReq/RndzAck), and the KV service tier's request/response
// headers. This header is the one place that does the byte shuffling -
// bounds-checked store/load with the trivially-copyable constraint enforced
// at compile time, so a header parse can never read past a short frame and a
// non-POD can never be memcpy'd by accident.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>

namespace vialock::msg::wire {

template <typename T>
concept WirePod = std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>;

/// The raw bytes of `v`, for staging a POD into a slot or checksumming it.
template <WirePod T>
[[nodiscard]] inline std::span<const std::byte> pod_bytes(const T& v) {
  return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
}

/// Copy `v` to the front of `dst`; false when `dst` is too short.
template <WirePod T>
[[nodiscard]] inline bool store_pod(std::span<std::byte> dst, const T& v) {
  if (dst.size() < sizeof(T)) return false;
  std::memcpy(dst.data(), &v, sizeof(T));
  return true;
}

/// Parse a `T` from the front of `src`; false when `src` is too short
/// (a truncated or corrupt frame - the caller treats it like a bad magic).
template <WirePod T>
[[nodiscard]] inline bool load_pod(std::span<const std::byte> src, T& v) {
  if (src.size() < sizeof(T)) return false;
  std::memcpy(&v, src.data(), sizeof(T));
  return true;
}

}  // namespace vialock::msg::wire
