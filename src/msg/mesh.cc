#include "msg/mesh.h"

#include <cassert>
#include <span>

namespace vialock::msg {

using simkern::Pid;
using simkern::VAddr;

Mesh::Mesh(via::Cluster& cluster, std::vector<via::NodeId> nodes, Config config)
    : cluster_(cluster), nodes_(std::move(nodes)), config_(config) {}

Mesh::~Mesh() = default;

KStatus Mesh::init() {
  assert(!initialised_);
  if (nodes_.size() < 2) return KStatus::Inval;

  // One process and one rank heap per node.
  const auto prot = simkern::VmFlag::Read | simkern::VmFlag::Write;
  for (Rank r = 0; r < size(); ++r) {
    const Pid pid =
        kern(r).create_task("rank" + std::to_string(r));
    pids_.push_back(pid);
    const auto heap =
        kern(r).sys_mmap_anon(pid, config_.rank_heap_bytes, prot);
    if (!heap) return KStatus::NoMem;
    rank_heaps_.push_back(*heap);
  }

  // A channel per ordered pair, attached to the rank processes. Lazy mode
  // defers each pair to its first send - collectives touch O(N log N) pairs,
  // so a 256-rank mesh skips tens of thousands of idle channels.
  if (!config_.lazy_channels) {
    for (Rank i = 0; i < size(); ++i) {
      for (Rank j = 0; j < size(); ++j) {
        if (i == j) continue;
        if (ensure_channel(i, j) == nullptr) return KStatus::NoMem;
      }
    }
  }
  initialised_ = true;
  return KStatus::Ok;
}

Channel* Mesh::ensure_channel(Rank from, Rank to) {
  const auto key = std::make_pair(from, to);
  if (const auto it = channels_.find(key); it != channels_.end())
    return it->second.get();
  Channel::Config cfg = config_.channel;
  cfg.sender_pid = pids_[from];
  cfg.receiver_pid = pids_[to];
  auto ch =
      std::make_unique<Channel>(cluster_, nodes_[from], nodes_[to], cfg);
  if (!ok(ch->init())) return nullptr;
  Channel* ptr = ch.get();
  channels_.emplace(key, std::move(ch));
  return ptr;
}

KStatus Mesh::stage_rank(Rank rank, std::uint64_t offset,
                         std::span<const std::byte> data) {
  return kern(rank).write_user(pids_[rank], rank_heaps_[rank] + offset, data);
}

KStatus Mesh::fetch_rank(Rank rank, std::uint64_t offset,
                         std::span<std::byte> out) {
  return kern(rank).read_user(pids_[rank], rank_heaps_[rank] + offset, out);
}

KStatus Mesh::send(Rank from, Rank to, std::uint64_t offset,
                   std::uint32_t len) {
  assert(initialised_ && from != to && from < size() && to < size());
  Channel* chp = ensure_channel(from, to);
  if (chp == nullptr) return KStatus::NoMem;
  Channel& ch = *chp;
  // rank heap -> channel source heap (one local copy in `from`'s process)...
  if (const KStatus st = kern(from).copy_user(
          pids_[from], ch.sender_heap(), rank_heaps_[from] + offset, len);
      !ok(st)) {
    return st;
  }
  // ...across the wire (protocol by size)...
  if (const KStatus st = ch.transfer_auto(0, 0, len); !ok(st)) return st;
  // ...channel destination heap -> rank heap (one local copy in `to`).
  if (const KStatus st = kern(to).copy_user(
          pids_[to], rank_heaps_[to] + offset, ch.receiver_heap(), len);
      !ok(st)) {
    return st;
  }
  ++stats_.p2p_msgs;
  return KStatus::Ok;
}

KStatus Mesh::barrier() {
  // Dissemination barrier: in round k every rank signals (rank + 2^k) mod N.
  const Rank n = size();
  for (Rank k = 1; k < n; k <<= 1) {
    for (Rank r = 0; r < n; ++r) {
      const Rank to = (r + k) % n;
      if (const KStatus st = send(r, to, /*offset=*/0, /*len=*/8); !ok(st))
        return st;
    }
  }
  ++stats_.barriers;
  return KStatus::Ok;
}

KStatus Mesh::broadcast(Rank root, std::uint64_t offset, std::uint32_t len) {
  // Binomial tree over ranks relative to the root: in round k, ranks with
  // relative id < 2^k forward to relative id + 2^k.
  const Rank n = size();
  for (Rank k = 1; k < n; k <<= 1) {
    for (Rank rel = 0; rel < k && rel + k < n; ++rel) {
      const Rank from = (root + rel) % n;
      const Rank to = (root + rel + k) % n;
      if (const KStatus st = send(from, to, offset, len); !ok(st)) return st;
    }
  }
  ++stats_.broadcasts;
  return KStatus::Ok;
}

KStatus Mesh::allreduce_sum(std::uint64_t offset, std::uint32_t count) {
  const Rank n = size();
  const std::uint32_t bytes = count * 8;
  std::vector<std::uint64_t> acc(count);
  std::vector<std::uint64_t> incoming(count);

  // Reduce to rank 0 along a binomial tree: in round k (ascending, so every
  // sender has already folded its own subtree), rank r+k sends its partial
  // to rank r, which folds it in.
  for (Rank k = 1; k < n; k <<= 1) {
    for (Rank r = 0; r + k < n; r += 2 * k) {
      const Rank src = r + k;
      // The partial travels into a scratch area above the payload.
      const std::uint64_t scratch = offset + bytes;
      // Move src's payload into dst's scratch.
      if (const KStatus st = kern(src).copy_user(
              pids_[src], rank_heaps_[src] + scratch,
              rank_heaps_[src] + offset, bytes);
          !ok(st)) {
        return st;
      }
      if (const KStatus st = send(src, r, scratch, bytes); !ok(st)) return st;
      // Fold: dst reads both vectors, adds, writes back (CPU work in dst).
      if (const KStatus st = fetch_at(r, offset, acc); !ok(st)) return st;
      if (const KStatus st = fetch_at(r, scratch, incoming); !ok(st)) return st;
      for (std::uint32_t i = 0; i < count; ++i) acc[i] += incoming[i];
      if (const KStatus st = kern(r).write_user(
              pids_[r], rank_heaps_[r] + offset,
              std::as_bytes(std::span{acc}));
          !ok(st)) {
        return st;
      }
    }
  }
  // Broadcast the result back out.
  if (const KStatus st = broadcast(/*root=*/0, offset, bytes); !ok(st))
    return st;
  ++stats_.allreduces;
  return KStatus::Ok;
}

KStatus Mesh::alltoall(std::uint64_t offset, std::uint32_t block) {
  // Block j of rank i becomes block i of rank j. In-place exchange would let
  // early sends overwrite blocks their owners have not shipped yet, so phase
  // 1 snapshots every rank's outgoing blocks into an outbox region laid out
  // after the N data blocks; phase 2 exchanges out of the outboxes.
  const Rank n = size();
  const std::uint64_t outbox = offset + static_cast<std::uint64_t>(n) * block;
  for (Rank r = 0; r < n; ++r) {
    if (const KStatus st = kern(r).copy_user(
            pids_[r], rank_heaps_[r] + outbox, rank_heaps_[r] + offset,
            static_cast<std::uint64_t>(n) * block);
        !ok(st)) {
      return st;
    }
  }
  for (Rank i = 0; i < n; ++i) {
    for (Rank j = 0; j < n; ++j) {
      if (i == j) continue;
      // Ship outbox block j of rank i; it lands in rank j's outbox slot j
      // (whose own content is the unused to-self copy), then settles as
      // data block i.
      const std::uint64_t slot = outbox + static_cast<std::uint64_t>(j) * block;
      if (const KStatus st = send(i, j, slot, block); !ok(st)) return st;
      if (const KStatus st = kern(j).copy_user(
              pids_[j],
              rank_heaps_[j] + offset + static_cast<std::uint64_t>(i) * block,
              rank_heaps_[j] + slot, block);
          !ok(st)) {
        return st;
      }
    }
  }
  ++stats_.alltoalls;
  return KStatus::Ok;
}

// private helper used by allreduce_sum
KStatus Mesh::fetch_at(Rank rank, std::uint64_t offset,
                       std::span<std::uint64_t> out) {
  return kern(rank).read_user(pids_[rank], rank_heaps_[rank] + offset,
                              std::as_writable_bytes(out));
}

}  // namespace vialock::msg
