// mesh.h - an N-rank communicator and the collective operations the paper
// family names as future work ("the implementation of collective operations,
// because VIA as well as SCI offer excellent features for e.g. a barrier or
// a broadcast").
//
// One process per rank (node); an all-pairs set of Channels between them;
// each rank owns a canonical "rank heap" holding its application data.
// Point-to-point hops go rank heap -> channel -> rank heap with one local
// copy on each end (eager-style) or zero-copy through the channel's
// rendezvous path for large payloads. Collectives:
//   barrier()        - dissemination pattern, ceil(log2 N) rounds
//   broadcast()      - binomial tree from the root
//   allreduce_sum()  - reduce-to-root (binomial) + broadcast, u64 vectors
//   alltoall()       - pairwise exchange rounds
//
// The simulation is synchronous, so collective "rounds" execute sequentially
// against the shared virtual clock; reported times are an upper bound (no
// overlap between peers within a round).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "msg/transport.h"

namespace vialock::msg {

class Mesh {
 public:
  using Rank = std::uint32_t;

  struct Config {
    Channel::Config channel;  ///< applied to every pairwise channel
    std::uint64_t rank_heap_bytes = 2ULL << 20;
    /// Create pairwise channels on first use instead of all N*(N-1) at
    /// init(). Collectives on an N-rank mesh only ever touch O(N log N)
    /// pairs, and cluster-scale scenarios cannot afford the full matrix.
    bool lazy_channels = false;
  };

  Mesh(via::Cluster& cluster, std::vector<via::NodeId> nodes, Config config);
  Mesh(via::Cluster& cluster, std::vector<via::NodeId> nodes)
      : Mesh(cluster, std::move(nodes), Config{}) {}
  ~Mesh();

  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  [[nodiscard]] KStatus init();
  [[nodiscard]] Rank size() const { return static_cast<Rank>(nodes_.size()); }

  // --- application data in rank heaps ------------------------------------------
  [[nodiscard]] KStatus stage_rank(Rank rank, std::uint64_t offset,
                                   std::span<const std::byte> data);
  [[nodiscard]] KStatus fetch_rank(Rank rank, std::uint64_t offset,
                                   std::span<std::byte> out);

  // --- point-to-point -------------------------------------------------------------
  /// Move `len` bytes at heap `offset` from rank `from` to the same offset
  /// in rank `to`'s heap (protocol chosen by size).
  [[nodiscard]] KStatus send(Rank from, Rank to, std::uint64_t offset,
                             std::uint32_t len);

  // --- collectives ------------------------------------------------------------------
  [[nodiscard]] KStatus barrier();
  /// After return, every rank's heap holds the root's `len` bytes at `offset`.
  [[nodiscard]] KStatus broadcast(Rank root, std::uint64_t offset,
                                  std::uint32_t len);
  /// Element-wise sum of each rank's `count` u64s at `offset`; the result
  /// lands in every rank's heap.
  [[nodiscard]] KStatus allreduce_sum(std::uint64_t offset,
                                      std::uint32_t count);
  /// Each rank holds N blocks of `block` bytes at `offset`; block j of rank i
  /// ends up as block i of rank j.
  [[nodiscard]] KStatus alltoall(std::uint64_t offset, std::uint32_t block);

  struct MeshStats {
    std::uint64_t p2p_msgs = 0;
    std::uint64_t barriers = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t allreduces = 0;
    std::uint64_t alltoalls = 0;
  };
  [[nodiscard]] const MeshStats& stats() const { return stats_; }
  /// Channels materialised so far (== N*(N-1) unless lazy_channels).
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] simkern::Pid rank_pid(Rank r) const { return pids_[r]; }
  [[nodiscard]] via::Node& rank_node(Rank r) {
    return cluster_.node(nodes_[r]);
  }

 private:
  /// The (from, to) channel, created on demand under lazy_channels;
  /// nullptr if lazy creation failed.
  [[nodiscard]] Channel* ensure_channel(Rank from, Rank to);
  /// Read `out.size()` u64s from a rank heap (allreduce folding).
  [[nodiscard]] KStatus fetch_at(Rank rank, std::uint64_t offset,
                                 std::span<std::uint64_t> out);
  [[nodiscard]] simkern::Kernel& kern(Rank r) {
    return cluster_.node(nodes_[r]).kernel();
  }

  via::Cluster& cluster_;
  std::vector<via::NodeId> nodes_;
  Config config_;
  MeshStats stats_;
  std::vector<simkern::Pid> pids_;
  std::vector<simkern::VAddr> rank_heaps_;
  std::map<std::pair<Rank, Rank>, std::unique_ptr<Channel>> channels_;
  bool initialised_ = false;
};

}  // namespace vialock::msg
