// transport.h - a zero-copy message layer over the VIA substrate.
//
// Implements the three transfer protocols of the paper family (the MPI
// libraries the locking mechanism exists to serve):
//
//   Eager          - copy through pre-registered bounce buffers; one copy on
//                    each side; no registration on the critical path. Best
//                    for small messages.
//   Rendezvous     - dynamic registration: REQ control message, receiver
//                    registers its destination buffer (through the
//                    RegistrationCache) and answers with its memory handle,
//                    sender registers the source buffer and RDMA-writes the
//                    payload directly user-buffer to user-buffer (true
//                    zero-copy). Registration cost amortises via the cache.
//   Preregistered  - whole heaps registered at channel setup; pure RDMA on
//                    the critical path (the persistent-buffer upper bound).
//
// A Channel co-ordinates one sender process and one receiver process on two
// cluster nodes; the simulation is synchronous, so each transfer runs both
// sides inline against the shared virtual clock.
//
// Reliable-delivery mode (Config::reliability.enabled): the channel runs its
// protocols over *unreliable* VIs and provides delivery guarantees itself -
// every eager/control frame carries a sequence number and an FNV-1a checksum
// and must be acknowledged; a missing or corrupt frame (injected doorbell
// drop, wire loss, DMA bit-flip - see src/fault) triggers retransmission
// with exponential backoff up to a bounded retry budget; replayed frames are
// deduplicated by sequence number at the receiver; RDMA payloads are
// verified end-to-end against the sender's checksum and re-written on
// mismatch; an injected connection reset is repaired transparently. The
// price is visible in ChannelStats and in virtual time - that trade is
// experiment E20.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/reg_cache.h"
#include "fault/fault.h"
#include "util/arena.h"
#include "via/node.h"
#include "via/vipl.h"

namespace vialock::msg {

enum class Protocol : std::uint8_t {
  Eager,
  Rendezvous,
  Preregistered,
  /// The "Improved Rendezvous-Protocol" of the Memory Management paper's
  /// figure 5: the receiver exports (registers) its destination buffer, the
  /// sender imports it and copies the payload with programmed I/O straight
  /// into the receiver's user memory - "the sender copies data from private
  /// memory of the sending process directly into private memory of the
  /// receiving process". No sender-side registration at all.
  PioRendezvous,
};

[[nodiscard]] constexpr std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::Eager: return "eager";
    case Protocol::Rendezvous: return "rendezvous";
    case Protocol::Preregistered: return "preregistered";
    case Protocol::PioRendezvous: return "pio-rendezvous";
  }
  return "?";
}

struct ChannelStats {
  std::uint64_t eager_msgs = 0;
  std::uint64_t rendezvous_msgs = 0;
  std::uint64_t prereg_msgs = 0;
  std::uint64_t pio_msgs = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t control_msgs = 0;
  std::uint64_t window_imports = 0;  ///< PIO imports (cached thereafter)
  // Reliable-delivery mode:
  std::uint64_t frames_sent = 0;       ///< sequenced frames incl. retransmits
  std::uint64_t retries = 0;           ///< retransmissions (frames + RDMA)
  std::uint64_t send_timeouts = 0;     ///< timeout windows charged waiting
  std::uint64_t acks_received = 0;
  std::uint64_t dup_frames_dropped = 0;  ///< replays deduplicated by seq
  std::uint64_t corruptions_detected = 0;  ///< checksum mismatches caught
  std::uint64_t conn_repairs = 0;      ///< connections re-established
};

class Channel {
 public:
  /// Reliable-delivery policy. With `enabled`, the channel tolerates frame
  /// loss, corruption and connection resets at the cost of acknowledgement
  /// traffic, checksum computation and retransmission time.
  struct Reliability {
    bool enabled = false;
    std::uint32_t max_retries = 8;    ///< per frame / per RDMA payload
    Nanos retry_timeout = 100'000;    ///< base ack timeout (doubles per retry)
    std::uint32_t backoff_cap = 6;    ///< cap on timeout doublings
  };

  struct Config {
    std::uint32_t eager_slot_size = 8 * 1024;
    std::uint32_t eager_credits = 16;
    std::uint32_t eager_threshold = 4 * 1024;  ///< auto(): eager below this
    core::EvictionPolicy cache_policy = core::EvictionPolicy::Lru;
    std::size_t cache_max_idle = 1024;
    std::uint64_t user_heap_bytes = 8ULL << 20;  ///< per-process message heap
    bool preregister_heaps = false;  ///< enable the Preregistered protocol
    /// Existing processes to attach to (kInvalidPid: create fresh tasks).
    /// Lets several channels share one process per node (Mesh does this).
    simkern::Pid sender_pid = simkern::kInvalidPid;
    simkern::Pid receiver_pid = simkern::kInvalidPid;
    Reliability reliability;
  };

  Channel(via::Cluster& cluster, via::NodeId sender, via::NodeId receiver,
          Config config);
  Channel(via::Cluster& cluster, via::NodeId sender, via::NodeId receiver)
      : Channel(cluster, sender, receiver, Config{}) {}
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Build tasks, VIs, bounce buffers, caches; must be called once.
  [[nodiscard]] KStatus init();

  // --- untimed application-side helpers -----------------------------------------
  /// Place payload bytes at sender-heap offset `src_off`.
  [[nodiscard]] KStatus stage(std::uint64_t src_off,
                              std::span<const std::byte> payload);
  /// Read back bytes from receiver-heap offset `dst_off`.
  [[nodiscard]] KStatus fetch(std::uint64_t dst_off, std::span<std::byte> out);

  // --- timed transfer paths ------------------------------------------------------
  [[nodiscard]] KStatus transfer(Protocol proto, std::uint64_t src_off,
                                 std::uint64_t dst_off, std::uint32_t len);
  /// Protocol chosen by the eager threshold (the MPI/Pro-style switch).
  [[nodiscard]] KStatus transfer_auto(std::uint64_t src_off,
                                      std::uint64_t dst_off, std::uint32_t len);

  // --- introspection --------------------------------------------------------------
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const core::RegCacheStats& sender_cache_stats() const;
  [[nodiscard]] const core::RegCacheStats& receiver_cache_stats() const;
  [[nodiscard]] simkern::VAddr sender_heap() const { return src_heap_; }
  [[nodiscard]] simkern::VAddr receiver_heap() const { return dst_heap_; }
  [[nodiscard]] simkern::Pid sender_pid() const { return src_pid_; }
  [[nodiscard]] simkern::Pid receiver_pid() const { return dst_pid_; }
  [[nodiscard]] via::Node& sender_node() { return cluster_.node(sender_id_); }
  [[nodiscard]] via::Node& receiver_node() { return cluster_.node(receiver_id_); }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Side;  // everything per-process

  [[nodiscard]] KStatus eager(std::uint64_t src_off, std::uint64_t dst_off,
                              std::uint32_t len);
  [[nodiscard]] KStatus rendezvous(std::uint64_t src_off, std::uint64_t dst_off,
                                   std::uint32_t len);
  [[nodiscard]] KStatus preregistered(std::uint64_t src_off,
                                      std::uint64_t dst_off, std::uint32_t len);
  [[nodiscard]] KStatus pio_rendezvous(std::uint64_t src_off,
                                       std::uint64_t dst_off,
                                       std::uint32_t len);

  /// Move `len` bytes of control/eager payload from `from`'s staging area
  /// into `to`'s next matched receive; returns the receive completion.
  [[nodiscard]] KStatus eager_push(Side& from, Side& to,
                                   std::span<const std::byte> msg,
                                   via::Descriptor& completion);

  // --- reliable-delivery machinery (active when config_.reliability.enabled)
  /// Control-message push: plain eager_push, or the sequenced/acked frame
  /// path in reliable mode.
  [[nodiscard]] KStatus push_ctrl(Side& from, Side& to,
                                  std::span<const std::byte> msg,
                                  via::Descriptor& completion);
  /// Send one sequenced, checksummed frame and wait for its ack,
  /// retransmitting on loss/corruption. On success `out` holds the payload
  /// as delivered (exactly once) at the receiver.
  [[nodiscard]] KStatus reliable_push(Side& from, Side& to, std::uint8_t kind,
                                      std::span<const std::byte> payload,
                                      std::vector<std::byte>& out);
  /// Receiver (`acker`) acknowledges `seq` back to `waiter`. False when the
  /// ack itself was lost or corrupted (the data frame will be retransmitted
  /// and deduplicated).
  [[nodiscard]] bool send_ack(Side& acker, Side& waiter, std::uint32_t seq);
  /// RDMA-write with end-to-end payload verification: retries until the
  /// receiver-side checksum matches the source data or retries exhaust.
  [[nodiscard]] KStatus reliable_rdma(const via::MemHandle& src_mh,
                                      simkern::VAddr src_addr,
                                      const via::MemHandle& dst_mh,
                                      simkern::VAddr dst_addr,
                                      std::uint32_t len);
  /// Registration-cache acquire that retries injected transient failures.
  [[nodiscard]] KStatus acquire_with_retry(Side& side, simkern::VAddr addr,
                                           std::uint32_t len,
                                           via::MemHandle& out);
  [[nodiscard]] KStatus reliable_eager(std::uint64_t src_off,
                                       std::uint64_t dst_off,
                                       std::uint32_t len);
  void charge_timeout(std::uint32_t attempt);
  void repair_connection();

  via::Cluster& cluster_;
  via::NodeId sender_id_;
  via::NodeId receiver_id_;
  Config config_;
  ChannelStats stats_;

  simkern::Pid src_pid_ = simkern::kInvalidPid;
  simkern::Pid dst_pid_ = simkern::kInvalidPid;
  simkern::VAddr src_heap_ = 0;
  simkern::VAddr dst_heap_ = 0;

  std::unique_ptr<Side> src_;
  std::unique_ptr<Side> dst_;
  bool initialised_ = false;

  /// Scratch buffers for frame builds, checksum verifies and staging copies:
  /// per-transfer lifetimes nest strictly, so the arena's LIFO leases replace
  /// a malloc/free pair per transfer on the host hot path (no simulated cost).
  util::BufferArena arena_;

  /// Metrics, published on the sender node's registry at init():
  /// "msg.ch.p<sender_pid>.d<receiver_pid>". Empty until then.
  std::string source_name_;
  obs::Histogram* transfer_ns_ = nullptr;  ///< bound at init()
};

}  // namespace vialock::msg
