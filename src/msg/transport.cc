#include "msg/transport.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <map>
#include <vector>

#include "msg/wire.h"
#include "via/remote_window.h"

namespace vialock::msg {

using simkern::VAddr;
using via::Descriptor;
using via::MemHandle;

namespace {

/// Rendezvous control messages (sent through the eager path).
struct RndzReq {
  std::uint32_t len = 0;
  std::uint64_t dst_off = 0;
};

struct RndzAck {
  MemHandle dst_handle;  ///< POD handle, "communicated out of band"
  VAddr dst_addr = 0;
};

// --- reliable-delivery frame format ----------------------------------------
// Every sequenced frame starts with this header; the checksum covers the
// payload, the header fields themselves are validated by magic + length so a
// bit-flip anywhere in the frame is caught.
inline constexpr std::uint32_t kFrameMagic = 0x56494146u;  // "VIAF"
inline constexpr std::uint8_t kFrameData = 1;
inline constexpr std::uint8_t kFrameCtrl = 2;
inline constexpr std::uint8_t kFrameAck = 3;

struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint32_t seq = 0;
  std::uint32_t len = 0;  ///< payload bytes following the header
  std::uint32_t crc = 0;  ///< fault::checksum32 of the payload
  std::uint8_t kind = 0;
  std::uint8_t pad[3] = {};
  // In-band causal context (DESIGN.md section 11): the sender's frame span,
  // carried with the frame so the receiver parents its processing spans under
  // the *transmitted* identity rather than any side channel. Zero = untraced.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);

}  // namespace

/// Per-process endpoint state.
struct Channel::Side {
  Side(via::Node& node, simkern::Pid pid) : host(node), vipl(node.agent(), pid) {}

  via::Node& host;  ///< the node this endpoint lives on (pids are per-kernel,
                    ///< so they cannot identify the side)
  via::Vipl vipl;
  via::ViId vi = via::kInvalidVi;
  VAddr slots = 0;          ///< eager bounce buffer array
  MemHandle slots_mh;       ///< its registration
  std::uint32_t num_slots = 0;
  std::uint32_t slot_size = 0;
  MemHandle heap_mh;        ///< whole-heap registration (Preregistered mode)
  bool heap_registered = false;
  std::unique_ptr<core::RegistrationCache> cache;
  std::map<std::uint64_t, via::RemoteWindow> imports;  ///< PIO import cache
  // Reliable-delivery state: sequence numbers this side assigns to frames it
  // originates, and the next sequence number it expects to receive.
  std::uint32_t send_seq = 0;
  std::uint32_t recv_expected = 0;

  [[nodiscard]] VAddr slot_addr(std::uint32_t i) const {
    return slots + static_cast<std::uint64_t>(i) * slot_size;
  }

  /// Re-arm receive descriptor for slot `i`.
  [[nodiscard]] KStatus repost(std::uint32_t i) {
    return vipl.post_recv(vi, slots_mh, slot_addr(i), slot_size, /*cookie=*/i);
  }
};

Channel::Channel(via::Cluster& cluster, via::NodeId sender,
                 via::NodeId receiver, Config config)
    : cluster_(cluster),
      sender_id_(sender),
      receiver_id_(receiver),
      config_(config) {}

Channel::~Channel() {
  if (!source_name_.empty()) {
    sender_node().kernel().metrics().unregister_source(source_name_, this);
  }
}

KStatus Channel::init() {
  assert(!initialised_);
  via::Node& sn = cluster_.node(sender_id_);
  via::Node& rn = cluster_.node(receiver_id_);

  src_pid_ = config_.sender_pid != simkern::kInvalidPid
                 ? config_.sender_pid
                 : sn.kernel().create_task("msg-sender");
  dst_pid_ = config_.receiver_pid != simkern::kInvalidPid
                 ? config_.receiver_pid
                 : rn.kernel().create_task("msg-receiver");

  const auto prot = simkern::VmFlag::Read | simkern::VmFlag::Write;
  const auto sh = sn.kernel().sys_mmap_anon(src_pid_, config_.user_heap_bytes, prot);
  const auto dh = rn.kernel().sys_mmap_anon(dst_pid_, config_.user_heap_bytes, prot);
  if (!sh || !dh) return KStatus::NoMem;
  src_heap_ = *sh;
  dst_heap_ = *dh;

  src_ = std::make_unique<Side>(sn, src_pid_);
  dst_ = std::make_unique<Side>(rn, dst_pid_);

  for (Side* s : {src_.get(), dst_.get()}) {
    if (const KStatus st = s->vipl.open(); !ok(st)) return st;
    // Reliable-delivery mode supplies its own guarantees, so it runs over
    // unreliable VIs (the VIA "unreliable delivery" service class).
    const via::ViAttributes attrs = config_.reliability.enabled
                                        ? via::ViAttributes::unreliable()
                                        : via::ViAttributes::reliable();
    if (const KStatus st = s->vipl.create_vi(s->vi, attrs); !ok(st)) return st;
    s->slot_size = config_.eager_slot_size;
    s->num_slots = config_.eager_credits;
  }
  if (const KStatus st = cluster_.fabric().connect(sender_id_, src_->vi,
                                                   receiver_id_, dst_->vi);
      !ok(st)) {
    return st;
  }

  // Eager bounce buffers: mmap + register once, pre-post all receive slots.
  struct SideSetup {
    Side* side;
    via::Node* node;
    simkern::Pid pid;
  };
  for (auto [side, node, pid] : {SideSetup{src_.get(), &sn, src_pid_},
                                 SideSetup{dst_.get(), &rn, dst_pid_}}) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(side->slot_size) * side->num_slots;
    const auto addr = node->kernel().sys_mmap_anon(pid, bytes, prot);
    if (!addr) return KStatus::NoMem;
    side->slots = *addr;
    if (const KStatus st = side->vipl.register_mem(side->slots, bytes,
                                                   side->slots_mh);
        !ok(st)) {
      return st;
    }
    // Pre-post every receive slot with one gather-list submission: a single
    // doorbell arms the whole ring instead of one PCI write per slot.
    std::vector<via::Vipl::RecvPost> posts;
    posts.reserve(side->num_slots);
    for (std::uint32_t i = 0; i < side->num_slots; ++i) {
      posts.push_back({side->slots_mh, side->slot_addr(i), side->slot_size,
                       /*cookie=*/i});
    }
    if (const KStatus st = side->vipl.post_recv_batch(side->vi, posts);
        !ok(st)) {
      return st;
    }
    side->cache = std::make_unique<core::RegistrationCache>(
        side->vipl, core::RegistrationCache::Config{
                        .policy = config_.cache_policy,
                        .max_idle = config_.cache_max_idle});
  }

  if (config_.preregister_heaps) {
    if (const KStatus st = src_->vipl.register_mem(
            src_heap_, config_.user_heap_bytes, src_->heap_mh);
        !ok(st)) {
      return st;
    }
    if (const KStatus st = dst_->vipl.register_mem(
            dst_heap_, config_.user_heap_bytes, dst_->heap_mh);
        !ok(st)) {
      return st;
    }
    src_->heap_registered = dst_->heap_registered = true;
  }

  // Publish the channel's counters on the sender node's registry (one node
  // owns a channel's metrics; the sender side initiates every transfer).
  // pid-suffixed: a Mesh builds one channel per ordered pair on shared pids.
  simkern::Kernel& sk = sn.kernel();
  source_name_ = "msg.ch.p" + std::to_string(src_pid_) + ".d" +
                 std::to_string(dst_pid_);
  transfer_ns_ = &sk.metrics().histogram(source_name_ + ".transfer_ns");
  sk.metrics().register_source(source_name_, this, [this](obs::MetricSink& s) {
    s.counter("eager_msgs", stats_.eager_msgs);
    s.counter("rendezvous_msgs", stats_.rendezvous_msgs);
    s.counter("prereg_msgs", stats_.prereg_msgs);
    s.counter("pio_msgs", stats_.pio_msgs);
    s.counter("bytes_moved", stats_.bytes_moved);
    s.counter("control_msgs", stats_.control_msgs);
    s.counter("window_imports", stats_.window_imports);
    s.counter("frames_sent", stats_.frames_sent);
    s.counter("retries", stats_.retries);
    s.counter("send_timeouts", stats_.send_timeouts);
    s.counter("acks_received", stats_.acks_received);
    s.counter("dup_frames_dropped", stats_.dup_frames_dropped);
    s.counter("corruptions_detected", stats_.corruptions_detected);
    s.counter("conn_repairs", stats_.conn_repairs);
  });

  initialised_ = true;
  return KStatus::Ok;
}

// ---------------------------------------------------------------------------
// Untimed helpers
// ---------------------------------------------------------------------------

KStatus Channel::stage(std::uint64_t src_off, std::span<const std::byte> payload) {
  return sender_node().kernel().write_user(src_pid_, src_heap_ + src_off,
                                           payload);
}

KStatus Channel::fetch(std::uint64_t dst_off, std::span<std::byte> out) {
  return receiver_node().kernel().read_user(dst_pid_, dst_heap_ + dst_off, out);
}

// ---------------------------------------------------------------------------
// Eager path
// ---------------------------------------------------------------------------

KStatus Channel::eager_push(Side& from, Side& to,
                            std::span<const std::byte> msg,
                            Descriptor& completion) {
  assert(msg.size() <= from.slot_size);
  // Copy into the sender's bounce slot 0 (single in-flight message in the
  // synchronous model) via one user-space copy... except the source here is
  // library-internal bytes, so write_user models the copy into the
  // registered buffer.
  if (const KStatus st = from.host.kernel().write_user(from.vipl.pid(),
                                                       from.slot_addr(0), msg);
      !ok(st)) {
    return st;
  }
  if (const KStatus st =
          from.vipl.post_send(from.vi, from.slots_mh, from.slot_addr(0),
                              static_cast<std::uint32_t>(msg.size()));
      !ok(st)) {
    return st;
  }
  const auto sc = from.vipl.send_done(from.vi);
  if (!sc || !sc->done_ok()) return KStatus::Proto;
  const auto rc = to.vipl.recv_done(to.vi);
  if (!rc || !rc->done_ok()) return KStatus::Proto;
  completion = *rc;
  // Re-arm the consumed slot.
  return to.repost(static_cast<std::uint32_t>(rc->cookie));
}

KStatus Channel::eager(std::uint64_t src_off, std::uint64_t dst_off,
                       std::uint32_t len) {
  if (len > config_.eager_slot_size) return KStatus::Inval;
  simkern::Kernel& sk = sender_node().kernel();
  simkern::Kernel& rk = receiver_node().kernel();

  // Sender: one copy user buffer -> registered bounce slot.
  if (const KStatus st =
          sk.copy_user(src_pid_, src_->slot_addr(0), src_heap_ + src_off, len);
      !ok(st)) {
    return st;
  }
  if (const KStatus st = src_->vipl.post_send(src_->vi, src_->slots_mh,
                                              src_->slot_addr(0), len);
      !ok(st)) {
    return st;
  }
  const auto sc = src_->vipl.send_done(src_->vi);
  if (!sc || !sc->done_ok()) return KStatus::Proto;
  const auto rc = dst_->vipl.recv_done(dst_->vi);
  if (!rc || !rc->done_ok()) return KStatus::Proto;

  // Receiver: one copy bounce slot -> user buffer, then re-arm the slot.
  const auto slot = static_cast<std::uint32_t>(rc->cookie);
  if (const KStatus st = rk.copy_user(dst_pid_, dst_heap_ + dst_off,
                                      dst_->slot_addr(slot), len);
      !ok(st)) {
    return st;
  }
  if (const KStatus st = dst_->repost(slot); !ok(st)) return st;

  ++stats_.eager_msgs;
  stats_.bytes_moved += len;
  return KStatus::Ok;
}

// ---------------------------------------------------------------------------
// Reliable-delivery machinery
// ---------------------------------------------------------------------------

void Channel::charge_timeout(std::uint32_t attempt) {
  const Reliability& rel = config_.reliability;
  const std::uint32_t shift = std::min(attempt, rel.backoff_cap);
  cluster_.clock().advance(rel.retry_timeout << shift);
  ++stats_.send_timeouts;
  sender_node().kernel().trace().record(
      cluster_.clock().now(), TraceEvent::SendTimeout,
      static_cast<std::uint32_t>(src_pid_), /*addr=*/0, attempt);
}

void Channel::repair_connection() {
  ++stats_.conn_repairs;
  // Best effort: the endpoints always exist here, so Inval cannot happen.
  (void)cluster_.fabric().repair(sender_id_, src_->vi, receiver_id_, dst_->vi);
}

bool Channel::send_ack(Side& acker, Side& waiter, std::uint32_t seq) {
  const obs::ScopedSpan ack_span(acker.host.kernel().spans(), "msg.ack");
  FrameHeader hdr;
  hdr.magic = kFrameMagic;
  hdr.seq = seq;
  hdr.len = 0;
  hdr.crc = fault::checksum32({});
  hdr.kind = kFrameAck;
  const obs::TraceContext ack_ctx = acker.host.kernel().spans().active_context();
  hdr.trace_id = ack_ctx.trace_id;
  hdr.span_id = ack_ctx.span_id;
  std::array<std::byte, sizeof(FrameHeader)> frame;
  static_cast<void>(wire::store_pod(frame, hdr));  // frame is sized exactly

  ++stats_.frames_sent;
  if (!ok(acker.host.kernel().write_user(acker.vipl.pid(), acker.slot_addr(0),
                                         frame))) {
    return false;
  }
  if (!ok(acker.vipl.post_send(acker.vi, acker.slots_mh, acker.slot_addr(0),
                               sizeof(FrameHeader)))) {
    return false;
  }
  const auto sc = acker.vipl.send_done(acker.vi);
  if (!sc) return false;  // doorbell drop: the ack never left
  if (sc->status == via::DescStatus::ErrDisconnected) {
    repair_connection();
    return false;
  }
  if (!sc->done_ok()) return false;
  const auto rc = waiter.vipl.recv_done(waiter.vi);
  if (!rc) return false;  // ack lost on the wire
  const auto slot = static_cast<std::uint32_t>(rc->cookie);
  std::array<std::byte, sizeof(FrameHeader)> rx{};
  const bool readable =
      rc->done_ok() && rc->transferred == sizeof(FrameHeader) &&
      ok(waiter.host.kernel().read_user(waiter.vipl.pid(),
                                        waiter.slot_addr(slot), rx));
  if (!ok(waiter.repost(slot))) return false;
  if (!readable) return false;
  FrameHeader got{};
  if (!wire::load_pod(rx, got)) return false;
  if (got.magic != kFrameMagic || got.kind != kFrameAck || got.seq != seq) {
    ++stats_.corruptions_detected;  // bit-flipped ack caught by the header
    return false;
  }
  return true;
}

KStatus Channel::reliable_push(Side& from, Side& to, std::uint8_t kind,
                               std::span<const std::byte> payload,
                               std::vector<std::byte>& out) {
  const Reliability& rel = config_.reliability;
  if (payload.size() + sizeof(FrameHeader) > from.slot_size)
    return KStatus::Inval;

  // The frame span covers every delivery attempt; retransmit spans open
  // inside it, so a retransmit is a child of the original send in the trace.
  obs::SpanRecorder& send_spans = from.host.kernel().spans();
  const obs::ScopedSpan frame_span(send_spans, "msg.frame");

  FrameHeader hdr;
  hdr.magic = kFrameMagic;
  hdr.seq = from.send_seq++;
  hdr.len = static_cast<std::uint32_t>(payload.size());
  hdr.crc = fault::checksum32(payload);
  hdr.kind = kind;
  // Stamp the causal context in-band: every retransmitted copy of this frame
  // carries the same originating span identity.
  const obs::TraceContext frame_ctx =
      frame_span.context().valid() ? frame_span.context()
                                   : send_spans.active_context();
  hdr.trace_id = frame_ctx.trace_id;
  hdr.span_id = frame_ctx.span_id;
  auto frame_lease = arena_.lease(sizeof(FrameHeader) + payload.size());
  std::vector<std::byte>& frame = *frame_lease;
  static_cast<void>(wire::store_pod(frame, hdr));  // frame covers the header
  if (!payload.empty())
    std::memcpy(frame.data() + sizeof hdr, payload.data(), payload.size());

  Clock& clock = cluster_.clock();
  bool delivered = false;

  for (std::uint32_t attempt = 0; attempt <= rel.max_retries; ++attempt) {
    const obs::ScopedSpan attempt_span(
        send_spans, attempt == 0 ? "msg.send" : "msg.retransmit");
    if (attempt > 0) {
      ++stats_.retries;
      from.host.kernel().trace().record(clock.now(), TraceEvent::SendRetry,
                                 static_cast<std::uint32_t>(from.vipl.pid()),
                                 hdr.seq, attempt);
    }
    ++stats_.frames_sent;
    if (const KStatus st =
            from.host.kernel().write_user(from.vipl.pid(), from.slot_addr(0), frame);
        !ok(st)) {
      return st;
    }
    if (!ok(from.vipl.post_send(from.vi, from.slots_mh, from.slot_addr(0),
                                static_cast<std::uint32_t>(frame.size())))) {
      // The VI is broken (an earlier reset): repair and retry.
      repair_connection();
      charge_timeout(attempt);
      continue;
    }
    const auto sc = from.vipl.send_done(from.vi);
    if (!sc) {
      // Doorbell drop: the NIC never saw the descriptor, so no completion
      // will ever arrive - only the timeout catches this.
      charge_timeout(attempt);
      continue;
    }
    if (sc->status == via::DescStatus::ErrDisconnected) {
      repair_connection();
      charge_timeout(attempt);
      continue;
    }
    if (sc->status == via::DescStatus::ErrNoRecvDesc) {
      charge_timeout(attempt);
      continue;
    }
    if (!sc->done_ok()) return KStatus::Proto;

    // A Done send only proves the frame left the local NIC; poll the
    // receive queue to learn whether it survived the wire.
    const auto rc = to.vipl.recv_done(to.vi);
    if (!rc) {
      charge_timeout(attempt);  // silent wire loss
      continue;
    }
    const auto slot = static_cast<std::uint32_t>(rc->cookie);
    auto rx_lease = arena_.lease(rc->transferred);
    std::vector<std::byte>& rx = *rx_lease;
    const bool readable =
        rc->done_ok() &&
        ok(to.host.kernel().read_user(to.vipl.pid(), to.slot_addr(slot), rx));
    if (const KStatus st = to.repost(slot); !ok(st)) return st;
    if (!readable) {
      charge_timeout(attempt);
      continue;
    }

    FrameHeader got{};
    bool valid = wire::load_pod(rx, got);
    if (valid) {
      valid = got.magic == kFrameMagic && got.kind == kind &&
              sizeof(FrameHeader) + got.len == rx.size() &&
              got.crc ==
                  fault::checksum32(std::span(rx).subspan(sizeof(FrameHeader)));
    }
    if (!valid) {
      // An injected DMA/wire bit-flip caught by magic/length/checksum: the
      // receiver discards the frame and withholds the ack.
      ++stats_.corruptions_detected;
      charge_timeout(attempt);
      continue;
    }

    // Receiver-side processing adopts the *in-band* context from the frame
    // header (not the sender's recorder): its parent is the transmitted
    // span_id, and the ack sent below nests under it.
    obs::SpanRecorder& recv_spans = to.host.kernel().spans();
    const obs::ScopedTraceContext rx_ctx(
        recv_spans, obs::TraceContext{got.trace_id, got.span_id, 0});
    const obs::ScopedSpan rx_span(recv_spans, "msg.frame.recv");

    if (got.seq == to.recv_expected) {
      ++to.recv_expected;
      out.assign(rx.begin() + sizeof(FrameHeader), rx.end());
      delivered = true;
    } else if (delivered && got.seq == hdr.seq) {
      // A replay of a frame whose ack was lost: deduplicate (do not deliver
      // twice) but re-ack so the sender can stop retransmitting.
      ++stats_.dup_frames_dropped;
    } else {
      // The sequence number is not covered by the payload checksum; a
      // bit-flip there shows up as an impossible seq. Treat as corruption.
      ++stats_.corruptions_detected;
      charge_timeout(attempt);
      continue;
    }
    if (!send_ack(to, from, got.seq)) {
      charge_timeout(attempt);
      continue;  // lost/corrupt ack: retransmit, the dedup path re-acks
    }
    ++stats_.acks_received;
    return KStatus::Ok;
  }
  sender_node().kernel().trace().record(
      clock.now(), TraceEvent::SendTimeout,
      static_cast<std::uint32_t>(from.vipl.pid()), hdr.seq, rel.max_retries);
  // Retry budget exhausted: a terminal fault. Capture the postmortem while
  // the spans/trace/metrics still show the failing timeline.
  sender_node().kernel().flight_dump("msg.send_timeout");
  return KStatus::TimedOut;
}

KStatus Channel::push_ctrl(Side& from, Side& to, std::span<const std::byte> msg,
                           Descriptor& completion) {
  if (!config_.reliability.enabled)
    return eager_push(from, to, msg, completion);
  auto out_lease = arena_.lease(0);
  return reliable_push(from, to, kFrameCtrl, msg, *out_lease);
}

KStatus Channel::acquire_with_retry(Side& side, VAddr addr, std::uint32_t len,
                                    MemHandle& out) {
  KStatus st = side.cache->acquire(addr, len, out);
  if (!config_.reliability.enabled) return st;
  // Injected registration failures (kiobuf map rejection, allocator
  // pressure) are transient: back off and retry within the same budget.
  for (std::uint32_t attempt = 0;
       st == KStatus::Again && attempt < config_.reliability.max_retries;
       ++attempt) {
    charge_timeout(attempt);
    st = side.cache->acquire(addr, len, out);
  }
  return st;
}

KStatus Channel::reliable_rdma(const MemHandle& src_mh, VAddr src_addr,
                               const MemHandle& dst_mh, VAddr dst_addr,
                               std::uint32_t len) {
  const Reliability& rel = config_.reliability;
  Clock& clock = cluster_.clock();
  simkern::Kernel& sk = sender_node().kernel();
  simkern::Kernel& rk = receiver_node().kernel();

  // End-to-end integrity: checksum the source payload once; the FIN exchange
  // is modelled by verifying the receiver's copy against it after every
  // write attempt.
  auto buf_lease = arena_.lease(len);
  std::vector<std::byte>& buf = *buf_lease;
  if (const KStatus st = sk.read_user(src_pid_, src_addr, buf); !ok(st))
    return st;
  const std::uint32_t want = fault::checksum32(buf);

  // Same trace shape as reliable_push: one enclosing span per RDMA op, one
  // child per attempt, so retransmits parent under the original write.
  const obs::ScopedSpan rdma_span(sk.spans(), "msg.rdma");

  for (std::uint32_t attempt = 0; attempt <= rel.max_retries; ++attempt) {
    const obs::ScopedSpan attempt_span(
        sk.spans(), attempt == 0 ? "msg.send" : "msg.retransmit");
    if (attempt > 0) {
      ++stats_.retries;
      sk.trace().record(clock.now(), TraceEvent::SendRetry,
                        static_cast<std::uint32_t>(src_pid_), dst_addr,
                        attempt);
    }
    if (!ok(src_->vipl.rdma_write(src_->vi, src_mh, src_addr, len, dst_mh,
                                  dst_addr, /*cookie=*/0,
                                  /*immediate=*/std::uint32_t{len}))) {
      repair_connection();
      charge_timeout(attempt);
      continue;
    }
    const auto sc = src_->vipl.send_done(src_->vi);
    if (!sc) {  // doorbell drop
      charge_timeout(attempt);
      continue;
    }
    if (sc->status == via::DescStatus::ErrDisconnected) {
      repair_connection();
      charge_timeout(attempt);
      continue;
    }
    if (!sc->done_ok()) return KStatus::Proto;
    // The immediate-data completion consumed a receiver slot; its absence
    // means the write was dropped in flight.
    if (const auto rc = dst_->vipl.recv_done(dst_->vi); rc) {
      if (const KStatus st =
              dst_->repost(static_cast<std::uint32_t>(rc->cookie));
          !ok(st)) {
        return st;
      }
      if (!rc->done_ok()) {
        charge_timeout(attempt);
        continue;
      }
    } else {
      charge_timeout(attempt);
      continue;
    }
    // Receiver-side verification (the read charges copy/fault time).
    if (const KStatus st = rk.read_user(dst_pid_, dst_addr, buf); !ok(st))
      return st;
    if (fault::checksum32(buf) != want) {
      ++stats_.corruptions_detected;
      charge_timeout(attempt);
      continue;
    }
    return KStatus::Ok;
  }
  sk.trace().record(clock.now(), TraceEvent::SendTimeout,
                    static_cast<std::uint32_t>(src_pid_), dst_addr,
                    rel.max_retries);
  sk.flight_dump("msg.rdma_timeout");
  return KStatus::TimedOut;
}

KStatus Channel::reliable_eager(std::uint64_t src_off, std::uint64_t dst_off,
                                std::uint32_t len) {
  if (len + sizeof(FrameHeader) > config_.eager_slot_size)
    return KStatus::Inval;
  auto payload_lease = arena_.lease(len);
  std::vector<std::byte>& payload = *payload_lease;
  if (const KStatus st =
          sender_node().kernel().read_user(src_pid_, src_heap_ + src_off,
                                           payload);
      !ok(st)) {
    return st;
  }
  auto out_lease = arena_.lease(0);
  std::vector<std::byte>& out = *out_lease;
  if (const KStatus st = reliable_push(*src_, *dst_, kFrameData, payload, out);
      !ok(st)) {
    return st;
  }
  if (const KStatus st = receiver_node().kernel().write_user(
          dst_pid_, dst_heap_ + dst_off, out);
      !ok(st)) {
    return st;
  }
  ++stats_.eager_msgs;
  stats_.bytes_moved += len;
  return KStatus::Ok;
}

// ---------------------------------------------------------------------------
// Rendezvous path (dynamic registration, true zero-copy)
// ---------------------------------------------------------------------------

KStatus Channel::rendezvous(std::uint64_t src_off, std::uint64_t dst_off,
                            std::uint32_t len) {
  // 1. Sender -> receiver: REQ control message.
  const RndzReq req{len, dst_off};
  Descriptor comp;
  if (const KStatus st = push_ctrl(*src_, *dst_, wire::pod_bytes(req), comp);
      !ok(st)) {
    return st;
  }
  ++stats_.control_msgs;

  // 2. Receiver registers (or cache-hits) the destination buffer and ACKs
  //    with its memory handle.
  RndzAck ack;
  ack.dst_addr = dst_heap_ + dst_off;
  if (const KStatus st = acquire_with_retry(*dst_, ack.dst_addr, len,
                                            ack.dst_handle);
      !ok(st)) {
    return st;
  }
  if (const KStatus st = push_ctrl(*dst_, *src_, wire::pod_bytes(ack), comp);
      !ok(st)) {
    return st;
  }
  ++stats_.control_msgs;

  // 3. Sender registers (or cache-hits) the source buffer and RDMA-writes
  //    straight into the receiver's user buffer.
  MemHandle src_mh;
  if (const KStatus st = acquire_with_retry(*src_, src_heap_ + src_off, len,
                                            src_mh);
      !ok(st)) {
    return st;
  }
  if (config_.reliability.enabled) {
    if (const KStatus st = reliable_rdma(src_mh, src_heap_ + src_off,
                                         ack.dst_handle, ack.dst_addr, len);
        !ok(st)) {
      return st;
    }
  } else {
    if (const KStatus st = src_->vipl.rdma_write(
            src_->vi, src_mh, src_heap_ + src_off, len, ack.dst_handle,
            ack.dst_addr, /*cookie=*/0, /*immediate=*/std::uint32_t{len});
        !ok(st)) {
      return st;
    }
    const auto sc = src_->vipl.send_done(src_->vi);
    if (!sc || !sc->done_ok()) return KStatus::Proto;
    // The immediate-data completion consumed one receiver slot: harvest +
    // re-arm.
    const auto rc = dst_->vipl.recv_done(dst_->vi);
    if (!rc || !rc->done_ok()) return KStatus::Proto;
    if (const KStatus st = dst_->repost(static_cast<std::uint32_t>(rc->cookie));
        !ok(st)) {
      return st;
    }
  }

  src_->cache->release(src_mh);
  dst_->cache->release(ack.dst_handle);

  ++stats_.rendezvous_msgs;
  stats_.bytes_moved += len;
  return KStatus::Ok;
}

// ---------------------------------------------------------------------------
// Preregistered path
// ---------------------------------------------------------------------------

KStatus Channel::preregistered(std::uint64_t src_off, std::uint64_t dst_off,
                               std::uint32_t len) {
  if (!src_->heap_registered || !dst_->heap_registered) return KStatus::Proto;
  if (config_.reliability.enabled) {
    if (const KStatus st =
            reliable_rdma(src_->heap_mh, src_heap_ + src_off, dst_->heap_mh,
                          dst_heap_ + dst_off, len);
        !ok(st)) {
      return st;
    }
    ++stats_.prereg_msgs;
    stats_.bytes_moved += len;
    return KStatus::Ok;
  }
  if (const KStatus st = src_->vipl.rdma_write(
          src_->vi, src_->heap_mh, src_heap_ + src_off, len, dst_->heap_mh,
          dst_heap_ + dst_off, /*cookie=*/0, /*immediate=*/std::uint32_t{len});
      !ok(st)) {
    return st;
  }
  const auto sc = src_->vipl.send_done(src_->vi);
  if (!sc || !sc->done_ok()) return KStatus::Proto;
  const auto rc = dst_->vipl.recv_done(dst_->vi);
  if (!rc || !rc->done_ok()) return KStatus::Proto;
  if (const KStatus st = dst_->repost(static_cast<std::uint32_t>(rc->cookie));
      !ok(st)) {
    return st;
  }
  ++stats_.prereg_msgs;
  stats_.bytes_moved += len;
  return KStatus::Ok;
}

// ---------------------------------------------------------------------------
// Improved rendezvous (PIO) path - figure 5 of the Memory Management paper
// ---------------------------------------------------------------------------

KStatus Channel::pio_rendezvous(std::uint64_t src_off, std::uint64_t dst_off,
                                std::uint32_t len) {
  // 1. Sender -> receiver: REQ ("the sender informs the receiver as usual").
  const RndzReq req{len, dst_off};
  Descriptor comp;
  if (const KStatus st = push_ctrl(*src_, *dst_, wire::pod_bytes(req), comp);
      !ok(st)) {
    return st;
  }
  ++stats_.control_msgs;

  // 2. Receiver checks whether the destination "is already exported to the
  //    sender" (registration cache) and acknowledges with its handle.
  RndzAck ack;
  ack.dst_addr = dst_heap_ + dst_off;
  if (const KStatus st =
          acquire_with_retry(*dst_, ack.dst_addr, len, ack.dst_handle);
      !ok(st)) {
    return st;
  }
  if (const KStatus st = push_ctrl(*dst_, *src_, wire::pod_bytes(ack), comp);
      !ok(st)) {
    return st;
  }
  ++stats_.control_msgs;

  // 3. Sender imports the exported memory (cached across transfers) and
  //    copies the payload with programmed I/O directly into the receiving
  //    process's private memory - no sender-side registration.
  auto it = src_->imports.find(ack.dst_handle.id);
  if (it == src_->imports.end()) {
    auto window = via::RemoteWindow::import(cluster_.fabric(), sender_id_,
                                            receiver_id_, ack.dst_handle);
    if (!window) return KStatus::Fault;
    it = src_->imports.emplace(ack.dst_handle.id, *window).first;
    ++stats_.window_imports;
  }
  simkern::Kernel& sk = sender_node().kernel();
  auto chunk_lease = arena_.lease(64 * 1024);
  std::vector<std::byte>& chunk = *chunk_lease;
  std::uint32_t done = 0;
  while (done < len) {
    const auto n = std::min<std::uint32_t>(
        len - done, static_cast<std::uint32_t>(chunk.size()));
    // CPU loads from the source buffer... (faults charged via the kernel)
    if (const KStatus st = sk.read_user(src_pid_, src_heap_ + src_off + done,
                                        std::span(chunk).first(n));
        !ok(st)) {
      return st;
    }
    // ...and stores through the imported window.
    const std::uint64_t window_off = ack.dst_addr - ack.dst_handle.vaddr;
    if (const KStatus st =
            it->second.store(window_off + done, std::span(chunk).first(n));
        !ok(st)) {
      return st;
    }
    done += n;
  }

  // 4. Completion notice (the protocol's finishing message). In reliable
  //    mode, also verify the stored payload end-to-end: PIO stores bypass
  //    the descriptor path, but they are still translated through the
  //    exporter's TPT, so an injected TPT corruption can land them in the
  //    wrong frame.
  if (config_.reliability.enabled) {
    auto chk_lease = arena_.lease(len);
    std::vector<std::byte>& chk = *chk_lease;
    if (const KStatus st =
            sk.read_user(src_pid_, src_heap_ + src_off, chk);
        !ok(st)) {
      return st;
    }
    const std::uint32_t want = fault::checksum32(chk);
    if (const KStatus st = receiver_node().kernel().read_user(
            dst_pid_, ack.dst_addr, chk);
        !ok(st)) {
      return st;
    }
    if (fault::checksum32(chk) != want) {
      ++stats_.corruptions_detected;
      return KStatus::Io;
    }
  }
  const RndzReq fin{len, dst_off};
  if (const KStatus st = push_ctrl(*src_, *dst_, wire::pod_bytes(fin), comp);
      !ok(st)) {
    return st;
  }
  ++stats_.control_msgs;
  dst_->cache->release(ack.dst_handle);

  ++stats_.pio_msgs;
  stats_.bytes_moved += len;
  return KStatus::Ok;
}

// ---------------------------------------------------------------------------

KStatus Channel::transfer(Protocol proto, std::uint64_t src_off,
                          std::uint64_t dst_off, std::uint32_t len) {
  assert(initialised_);
  if (len == 0) return KStatus::Inval;
  if (src_off + len > config_.user_heap_bytes ||
      dst_off + len > config_.user_heap_bytes) {
    return KStatus::Inval;
  }
  simkern::Kernel& sk = sender_node().kernel();
  const obs::ScopedSpan span(sk.spans(), "msg.transfer");
  // The whole transfer - both endpoints - runs under this root span's trace.
  // The receiver's kernel is a different recorder (its own ID stream), so its
  // spans adopt the context via the ambient stack; the simulation is
  // synchronous, so the push brackets all receiver-side work exactly.
  const obs::ScopedTraceContext recv_ctx(receiver_node().kernel().spans(),
                                         span.context());
  const VirtualStopwatch sw(sk.clock());
  const auto charge = [&](KStatus st) {
    transfer_ns_->add(sw.elapsed());
    return st;
  };
  switch (proto) {
    case Protocol::Eager:
      return charge(config_.reliability.enabled
                        ? reliable_eager(src_off, dst_off, len)
                        : eager(src_off, dst_off, len));
    case Protocol::Rendezvous: return charge(rendezvous(src_off, dst_off, len));
    case Protocol::Preregistered:
      return charge(preregistered(src_off, dst_off, len));
    case Protocol::PioRendezvous:
      return charge(pio_rendezvous(src_off, dst_off, len));
  }
  return KStatus::Inval;
}

KStatus Channel::transfer_auto(std::uint64_t src_off, std::uint64_t dst_off,
                               std::uint32_t len) {
  return transfer(len < config_.eager_threshold ? Protocol::Eager
                                                : Protocol::Rendezvous,
                  src_off, dst_off, len);
}

const core::RegCacheStats& Channel::sender_cache_stats() const {
  return src_->cache->stats();
}

const core::RegCacheStats& Channel::receiver_cache_stats() const {
  return dst_->cache->stats();
}

}  // namespace vialock::msg
