#include "obs/sampler.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/export.h"

namespace vialock::obs {

namespace {

/// Quantile over merged (index, count) bucket pairs, same walk as
/// obs::Histogram::quantile. 0 when empty.
std::uint64_t merged_quantile(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& buckets,
    std::uint64_t count, double q) {
  if (count == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (const auto& [i, n] : buckets) {
    seen += n;
    if (seen > target) return Histogram::upper_bound(i);
  }
  return buckets.empty() ? 0 : Histogram::upper_bound(buckets.back().first);
}

bool satisfied(SloOp op, std::uint64_t v, std::uint64_t threshold) {
  switch (op) {
    case SloOp::Lt: return v < threshold;
    case SloOp::Le: return v <= threshold;
    case SloOp::Gt: return v > threshold;
    case SloOp::Ge: return v >= threshold;
  }
  return true;
}

const Metric* find_metric(const std::vector<Metric>& metrics,
                          std::string_view name) {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const Metric& m, std::string_view n) { return m.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

}  // namespace

namespace {

/// Combine a same-named, same-kind metric into the accumulator entry.
void combine(Metric& d, const Metric& m) {
  if (m.kind == MetricKind::Histogram) {
    d.count += m.count;
    d.sum += m.sum;
    d.max = std::max(d.max, m.max);
    add_buckets(d.buckets, m.buckets);
  } else {
    d.value += m.value;
  }
}

}  // namespace

void Sampler::sample(Nanos when) {
  ++ticks_;
  // The merge is planned, not searched: every source keeps a cached map
  // from its emission order to a slot in the name-sorted skeleton of the
  // cluster-merged layout, and a registry layout generation proves the plan
  // is still valid. A steady-state tick is therefore one skeleton copy
  // (the retained sample has to own its data anyway) plus fold_into() on
  // every registry - instrument values combine straight into the sample,
  // touching no names and writing no intermediate buffers. The raw-buffer
  // snapshot and sort-and-plan rebuild below only run on ticks where some
  // source's layout actually changed (a channel registering its metrics
  // mid-run). That plan cache is what keeps E27's <=5% overhead gate green.
  const std::size_t nsrc = registries_.size() + extras_.size();
  if (bufs_.size() != nsrc) {
    bufs_.clear();
    bufs_.resize(nsrc);
    skeleton_.clear();
  }
  bool relayout = skeleton_.empty() && nsrc != 0;

  // Extras are few and cheap: refresh their raw buffers every tick (the
  // reuse-mode sink detects layout drift and triggers a re-plan).
  for (std::size_t x = 0; x < extras_.size(); ++x) {
    RegBuf& b = bufs_[registries_.size() + x];
    const bool fresh = b.raw.empty();
    std::size_t cur = 0;
    MetricSink sink(extras_[x].prefix, b.raw, fresh ? nullptr : &cur);
    extras_[x].fn(sink);
    if (fresh || sink.fell_back()) {
      relayout = true;
    } else if (cur != b.raw.size()) {
      b.raw.resize(cur);
      relayout = true;
    }
  }

  Sample s;
  s.when = when;
  if (!relayout) {
    s.metrics = skeleton_;
    for (std::size_t r = 0; r < registries_.size() && !relayout; ++r) {
      if (!registries_[r]->fold_into(s.metrics, bufs_[r].map, bufs_[r].gen))
        relayout = true;  // registry layout changed: discard, re-plan below
    }
  }
  if (relayout) {
    ++relayouts_;
    for (std::size_t r = 0; r < registries_.size(); ++r)
      (void)registries_[r]->snapshot_into(bufs_[r].raw, bufs_[r].gen);
    // Re-plan: sort refs to every raw metric by name (source order breaks
    // ties, so the first source still wins cross-kind name clashes), then
    // lay out the skeleton and point each raw slot at its merged slot.
    struct Ref {
      const Metric* m;
      std::uint32_t src;
      std::uint32_t idx;
    };
    std::vector<Ref> refs;
    for (std::uint32_t src = 0; src < bufs_.size(); ++src) {
      for (std::uint32_t i = 0; i < bufs_[src].raw.size(); ++i)
        refs.push_back({&bufs_[src].raw[i], src, i});
      bufs_[src].map.assign(bufs_[src].raw.size(), kNoFoldSlot);
    }
    std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
      if (a.m->name != b.m->name) return a.m->name < b.m->name;
      return a.src != b.src ? a.src < b.src : a.idx < b.idx;
    });
    skeleton_.clear();
    for (const Ref& r : refs) {
      if (skeleton_.empty() || skeleton_.back().name != r.m->name) {
        Metric m;
        m.name = r.m->name;
        m.kind = r.m->kind;
        skeleton_.push_back(std::move(m));
      } else if (skeleton_.back().kind != r.m->kind) {
        continue;  // cross-kind name clash: first wins, drop the rest
      }
      bufs_[r.src].map[r.idx] =
          static_cast<std::uint32_t>(skeleton_.size() - 1);
    }
    // Rebuild the sample from the fresh raw buffers (a fold may have been
    // abandoned half-way; the skeleton copy resets every slot).
    s.metrics = skeleton_;
    for (const RegBuf& b : bufs_) {
      for (std::size_t i = 0; i < b.raw.size(); ++i) {
        if (b.map[i] != kNoFoldSlot) combine(s.metrics[b.map[i]], b.raw[i]);
      }
    }
  } else {
    // Extras folded from the raw buffers refreshed above.
    for (std::size_t x = 0; x < extras_.size(); ++x) {
      const RegBuf& b = bufs_[registries_.size() + x];
      for (std::size_t i = 0; i < b.raw.size(); ++i) {
        if (b.map[i] != kNoFoldSlot) combine(s.metrics[b.map[i]], b.raw[i]);
      }
    }
  }
  for (Metric& m : s.metrics) {
    if (m.kind == MetricKind::Histogram && !m.buckets.empty()) {
      // Cross-host merge invalidated the per-host quantiles; recompute
      // from the merged buckets (exact for the single-host case too).
      m.p50 = merged_quantile(m.buckets, m.count, 0.50);
      m.p95 = merged_quantile(m.buckets, m.count, 0.95);
      m.p99 = merged_quantile(m.buckets, m.count, 0.99);
      m.p999 = merged_quantile(m.buckets, m.count, 0.999);
    }
  }

  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (cooldowns_[i] > 0) {
      --cooldowns_[i];
      continue;
    }
    std::uint64_t v = 0;
    if (!resolve(s.metrics, rules_[i].metric, v)) continue;
    if (satisfied(rules_[i].op, v, rules_[i].threshold)) continue;
    const SloFiring firing{i, ticks_ - 1, when, v};
    firings_.push_back(firing);
    cooldowns_[i] = rules_[i].window - 1;
    if (hook_) hook_(rules_[i], firing);
  }

  samples_.push_back(std::move(s));
  if (samples_.size() > cfg_.max_samples) {
    samples_.pop_front();
    ++dropped_;
  }
}

bool Sampler::resolve(const std::vector<Metric>& metrics, std::string_view ref,
                      std::uint64_t& out) {
  if (const Metric* m = find_metric(metrics, ref)) {
    out = m->kind == MetricKind::Histogram ? m->count : m->value;
    return true;
  }
  const auto dot = ref.rfind('.');
  if (dot == std::string_view::npos) return false;
  const std::string_view field = ref.substr(dot + 1);
  const Metric* m = find_metric(metrics, ref.substr(0, dot));
  if (m == nullptr || m->kind != MetricKind::Histogram) return false;
  if (field == "count") out = m->count;
  else if (field == "sum") out = m->sum;
  else if (field == "max") out = m->max;
  else if (field == "p50") out = m->p50;
  else if (field == "p95") out = m->p95;
  else if (field == "p99") out = m->p99;
  else if (field == "p999") out = m->p999;
  else return false;
  return true;
}

std::string Sampler::timeline_json(std::string_view scenario,
                                   std::uint64_t seed) const {
  // Pivot samples into per-metric series. Histograms contribute a .count
  // series (how fast events arrive) and a .p99 series (how the tail moves);
  // the full distribution stays available in end-of-run exports.
  struct Pt {
    Nanos t;
    std::uint64_t v;
  };
  std::map<std::string, std::pair<std::string_view, std::vector<Pt>>> series;
  const auto add = [&series](std::string name, std::string_view kind, Nanos t,
                             std::uint64_t v) {
    auto& e = series[std::move(name)];
    e.first = kind;
    e.second.push_back({t, v});
  };
  for (const Sample& s : samples_) {
    for (const Metric& m : s.metrics) {
      if (m.kind == MetricKind::Histogram) {
        add(m.name + ".count", "counter", s.when, m.count);
        add(m.name + ".p99", "gauge", s.when, m.p99);
      } else {
        add(m.name, to_string(m.kind), s.when, m.value);
      }
    }
  }

  std::ostringstream os;
  os << "{\n  \"scenario\": " << json_quote(scenario)
     << ",\n  \"seed\": " << seed << ",\n  \"interval_ns\": " << cfg_.interval
     << ",\n  \"ticks\": " << ticks_ << ",\n  \"samples\": " << samples_.size()
     << ",\n  \"dropped\": " << dropped_ << ",\n  \"slo_firings\": [";
  for (std::size_t i = 0; i < firings_.size(); ++i) {
    const SloFiring& f = firings_[i];
    const SloSpec& r = rules_[f.rule];
    os << (i ? "," : "") << "\n    {\"metric\": " << json_quote(r.metric)
       << ", \"op\": " << json_quote(to_string(r.op))
       << ", \"threshold\": " << r.threshold << ", \"window\": " << r.window
       << ", \"tick\": " << f.tick << ", \"t_ns\": " << f.when
       << ", \"observed\": " << f.observed << "}";
  }
  os << (firings_.empty() ? "" : "\n  ") << "],\n  \"series\": [";
  bool first = true;
  for (const auto& [name, e] : series) {
    os << (first ? "" : ",") << "\n    {\"name\": " << json_quote(name)
       << ", \"kind\": " << json_quote(e.first) << ", \"points\": [";
    const std::vector<Pt>& pts = e.second;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      // [t_ns, value, delta, rate/s]; delta and rate are vs the previous
      // retained point (signed - gauges fall as well as rise).
      long long delta = 0;
      long long rate = 0;
      if (i > 0) {
        delta = static_cast<long long>(pts[i].v) -
                static_cast<long long>(pts[i - 1].v);
        const Nanos dt = pts[i].t - pts[i - 1].t;
        if (dt != 0) {
          rate = static_cast<long long>(static_cast<__int128>(delta) *
                                        1'000'000'000 /
                                        static_cast<__int128>(dt));
        }
      }
      os << (i ? ", " : "") << "[" << pts[i].t << ", " << pts[i].v << ", "
         << delta << ", " << rate << "]";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::string Sampler::chrome_counter_events() const {
  std::ostringstream os;
  bool first = true;
  for (const Sample& s : samples_) {
    for (const std::string& name : cfg_.trace_metrics) {
      std::uint64_t v = 0;
      if (!resolve(s.metrics, name, v)) continue;
      os << (first ? "" : ",") << "\n  {\"name\": " << json_quote(name)
         << ", \"cat\": \"vialock\", \"ph\": \"C\", \"ts\": "
         << trace_micros(s.when) << ", \"pid\": 0, \"tid\": 0, "
         << "\"args\": {\"value\": " << v << "}}";
      first = false;
    }
  }
  return os.str();
}

}  // namespace vialock::obs
