#include "obs/metrics.h"

#include <algorithm>

#include "sync/range_lock.h"

namespace vialock::obs {

bool MetricSink::name_matches(const std::string& full,
                              std::string_view name) const {
  if (prefix_.empty()) return full == name;
  return full.size() == prefix_.size() + 1 + name.size() &&
         full.compare(0, prefix_.size(), prefix_) == 0 &&
         full[prefix_.size()] == '.' &&
         full.compare(prefix_.size() + 1, name.size(), name) == 0;
}

Metric* MetricSink::reuse_slot(std::string_view name, MetricKind kind) {
  if (cursor_ == nullptr) return nullptr;
  if (*cursor_ < out_.size()) {
    Metric& m = out_[*cursor_];
    if (m.kind == kind && (trusted_ || name_matches(m.name, name))) {
      ++*cursor_;
      return &m;
    }
  }
  // Layout diverged: drop the stale tail and append fresh from here on.
  out_.resize(*cursor_);
  cursor_ = nullptr;
  fallback_ = true;
  return nullptr;
}

void add_buckets(
    std::vector<std::pair<std::uint32_t, std::uint64_t>>& dst,
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& src) {
  std::size_t i = 0;
  for (const auto& [idx, n] : src) {
    while (i < dst.size() && dst[i].first < idx) ++i;
    if (i < dst.size() && dst[i].first == idx) {
      dst[i].second += n;
    } else {
      dst.insert(dst.begin() + static_cast<std::ptrdiff_t>(i), {idx, n});
    }
  }
}

void MetricSink::emit(std::string_view name, MetricKind kind,
                      std::uint64_t v) {
  if (fold_map_ != nullptr) {
    const std::uint32_t t = (*fold_map_)[(*cursor_)++];
    if (t != kNoFoldSlot) out_[t].value += v;
    return;
  }
  if (Metric* m = reuse_slot(name, kind)) {
    m->value = v;
    return;
  }
  Metric m;
  m.name.reserve(prefix_.size() + 1 + name.size());
  if (!prefix_.empty()) m.name.append(prefix_).append(".");
  m.name.append(name);
  m.kind = kind;
  m.value = v;
  out_.push_back(std::move(m));
}

void MetricSink::histogram(
    std::string_view name, std::uint64_t count, std::uint64_t sum,
    std::uint64_t max, std::uint64_t p50, std::uint64_t p95, std::uint64_t p99,
    std::uint64_t p999,
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets) {
  if (fold_map_ != nullptr) {
    const std::uint32_t t = (*fold_map_)[(*cursor_)++];
    if (t != kNoFoldSlot) {
      Metric& d = out_[t];
      d.count += count;
      d.sum += sum;
      d.max = std::max(d.max, max);
      add_buckets(d.buckets, buckets);
    }
    return;
  }
  Metric* m = reuse_slot(name, MetricKind::Histogram);
  if (m == nullptr) {
    Metric fresh;
    fresh.name.reserve(prefix_.size() + 1 + name.size());
    if (!prefix_.empty()) fresh.name.append(prefix_).append(".");
    fresh.name.append(name);
    fresh.kind = MetricKind::Histogram;
    out_.push_back(std::move(fresh));
    m = &out_.back();
  }
  m->count = count;
  m->sum = sum;
  m->max = max;
  m->p50 = p50;
  m->p95 = p95;
  m->p99 = p99;
  m->p999 = p999;
  m->buckets = std::move(buckets);
}

void Histogram::snapshot_to(Metric& m) const {
  std::uint64_t b[kBuckets];
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    b[i] = buckets_[i].load();
    n += b[i];
  }
  m.count = n;
  m.sum = sum_.load();
  m.max = n != 0 ? max_.load() : 0;
  m.buckets.clear();  // keeps capacity: steady state allocates nothing
  if (n == 0) {
    m.p50 = m.p95 = m.p99 = m.p999 = 0;
    return;
  }
  // Same walk as quantile(), all four tails in one pass: a quantile is the
  // upper bound of the bucket where the running count first exceeds its
  // target. Every target is <= n-1 < n, so each always resolves.
  const auto target = [n](double q) {
    return static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  };
  const std::uint64_t t50 = target(0.50), t95 = target(0.95),
                      t99 = target(0.99), t999 = target(0.999);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (b[i] == 0) continue;
    m.buckets.emplace_back(static_cast<std::uint32_t>(i), b[i]);
    const std::uint64_t prev = seen;
    seen += b[i];
    const std::uint64_t ub = upper_bound(i);
    if (prev <= t50 && seen > t50) m.p50 = ub;
    if (prev <= t95 && seen > t95) m.p95 = ub;
    if (prev <= t99 && seen > t99) m.p99 = ub;
    if (prev <= t999 && seen > t999) m.p999 = ub;
  }
}

Counter& MetricRegistry::counter(std::string_view name) {
  sync::Guard g(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
    ++layout_gen_;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  sync::Guard g(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    ++layout_gen_;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  sync::Guard g(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
    ++layout_gen_;
  }
  return *it->second;
}

void MetricRegistry::register_source(std::string name, const void* owner,
                                     SourceFn fn) {
  sync::Guard g(mu_);
  sources_.insert_or_assign(std::move(name), Source{owner, std::move(fn)});
  ++layout_gen_;
}

void MetricRegistry::unregister_source(std::string_view name,
                                       const void* owner) {
  sync::Guard g(mu_);
  const auto it = sources_.find(name);
  if (it != sources_.end() && it->second.owner == owner) {
    sources_.erase(it);
    ++layout_gen_;
  }
}

Snapshot MetricRegistry::snapshot() const {
  sync::Guard g(mu_);
  Snapshot out;
  // Sources emit ~16-32 metrics each; reserving avoids the realloc ladder
  // on the sampler's per-tick hot path (E27 overhead gate).
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() +
              24 * sources_.size());
  for (const auto& [name, c] : counters_) {
    Metric m;
    m.name = name;
    m.kind = MetricKind::Counter;
    m.value = c->value();
    out.push_back(std::move(m));
  }
  for (const auto& [name, g] : gauges_) {
    Metric m;
    m.name = name;
    m.kind = MetricKind::Gauge;
    m.value = g->value();
    out.push_back(std::move(m));
  }
  for (const auto& [name, h] : histograms_) {
    Metric m;
    m.name = name;
    m.kind = MetricKind::Histogram;
    m.count = h->count();
    m.sum = h->sum();
    m.max = h->max();
    m.p50 = h->quantile(0.50);
    m.p95 = h->quantile(0.95);
    m.p99 = h->quantile(0.99);
    m.p999 = h->quantile(0.999);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h->bucket(i)) {
        m.buckets.emplace_back(static_cast<std::uint32_t>(i), h->bucket(i));
      }
    }
    out.push_back(std::move(m));
  }
  for (const auto& [name, src] : sources_) {
    MetricSink sink(name, out);
    src.fn(sink);
  }
  std::sort(out.begin(), out.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return out;
}

bool MetricRegistry::snapshot_into(Snapshot& out,
                                   std::uint64_t& layout_gen) const {
  sync::Guard g(mu_);
  // The buffer was last filled from this exact layout: skip per-metric name
  // verification (kind is still checked; a mismatch degrades to a rebuild).
  const bool trusted = layout_gen == layout_gen_ && !out.empty();
  std::size_t cur = 0;
  bool reuse = !out.empty();

  // In-place slot for an owned instrument, or a fresh append once the
  // layout diverged (the tail past `cur` is stale and gets truncated).
  const auto slot = [&out, &cur, &reuse, trusted](
                        const std::string& name, MetricKind kind) -> Metric* {
    if (reuse && cur < out.size() && out[cur].kind == kind &&
        (trusted || out[cur].name == name)) {
      return &out[cur++];
    }
    if (reuse) {
      out.resize(cur);
      reuse = false;
    }
    Metric m;
    m.name = name;
    m.kind = kind;
    out.push_back(std::move(m));
    return &out.back();
  };

  for (const auto& [name, c] : counters_)
    slot(name, MetricKind::Counter)->value = c->value();
  for (const auto& [name, ga] : gauges_)
    slot(name, MetricKind::Gauge)->value = ga->value();
  for (const auto& [name, h] : histograms_)
    h->snapshot_to(*slot(name, MetricKind::Histogram));
  for (const auto& [name, src] : sources_) {
    MetricSink sink(name, out, reuse ? &cur : nullptr, trusted);
    src.fn(sink);
    if (sink.fell_back()) reuse = false;
  }
  if (reuse && cur != out.size()) {
    out.resize(cur);  // sources emitted fewer metrics than last time
    reuse = false;
  }
  layout_gen = layout_gen_;
  return reuse;
}

bool MetricRegistry::fold_into(Snapshot& target,
                               const std::vector<std::uint32_t>& map,
                               std::uint64_t layout_gen) const {
  sync::Guard g(mu_);
  if (layout_gen != layout_gen_) return false;
  // The generation match proves `map` was planned from this exact layout
  // (and the register_source contract keeps source emissions fixed), so
  // every emission below lands on its planned slot positionally.
  std::size_t cur = 0;
  for (const auto& [name, c] : counters_) {
    const std::uint32_t t = map[cur++];
    if (t != kNoFoldSlot) target[t].value += c->value();
  }
  for (const auto& [name, ga] : gauges_) {
    const std::uint32_t t = map[cur++];
    if (t != kNoFoldSlot) target[t].value += ga->value();
  }
  for (const auto& [name, h] : histograms_) {
    const std::uint32_t t = map[cur++];
    if (t == kNoFoldSlot) continue;
    Metric& d = target[t];
    std::uint64_t n = 0;
    std::size_t di = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t bn = h->bucket(i);
      if (bn == 0) continue;
      n += bn;
      const auto idx = static_cast<std::uint32_t>(i);
      while (di < d.buckets.size() && d.buckets[di].first < idx) ++di;
      if (di < d.buckets.size() && d.buckets[di].first == idx) {
        d.buckets[di].second += bn;
      } else {
        d.buckets.insert(d.buckets.begin() + static_cast<std::ptrdiff_t>(di),
                         {idx, bn});
      }
    }
    d.count += n;
    d.sum += h->sum();
    if (n != 0) d.max = std::max(d.max, h->max());
  }
  for (const auto& [name, src] : sources_) {
    MetricSink sink(MetricSink::FoldTag{}, name, target, map, &cur);
    src.fn(sink);
  }
  return true;
}

void emit_contention(MetricSink& sink, std::string_view lock,
                     const sync::ContentionStats& s) {
  std::string p(lock);
  p += '.';
  sink.counter(p + "acquisitions", s.acquisitions.load());
  sink.counter(p + "contended", s.contended.load());
  sink.counter(p + "handoffs", s.handoffs.load());
  sink.counter(p + "secondary_handoffs", s.secondary_handoffs.load());
  sink.counter(p + "flushes", s.flushes.load());
  sink.counter(p + "try_failures", s.try_failures.load());
  const sync::WaitHistogram& h = s.wait_ns;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  for (std::size_t i = 0; i < sync::WaitHistogram::kBuckets; ++i) {
    if (const std::uint64_t n = h.buckets[i].load(); n != 0)
      buckets.emplace_back(static_cast<std::uint32_t>(i), n);
  }
  sink.histogram(p + "wait_ns", h.count.load(), h.sum.load(),
                 h.count.load() != 0 ? h.max.load() : 0, h.quantile(0.50),
                 h.quantile(0.95), h.quantile(0.99), h.quantile(0.999),
                 std::move(buckets));
}

void emit_range_lock(MetricSink& sink, std::string_view lock,
                     const sync::RangeLock& rl,
                     const sync::RangeContentionStats& s) {
  std::string p(lock);
  p += '.';
  sink.counter(p + "acquired", rl.acquired());
  sink.counter(p + "contended", rl.contended());
  sink.counter(p + "wait_rounds", s.wait_rounds.load());
  sink.counter(p + "try_failures", s.try_failures.load());
  sink.gauge(p + "peak_waiters", s.peak_waiters.load());
}

}  // namespace vialock::obs
