#include "obs/metrics.h"

#include <algorithm>

namespace vialock::obs {

void MetricSink::emit(std::string_view name, MetricKind kind,
                      std::uint64_t v) {
  Metric m;
  m.name.reserve(prefix_.size() + 1 + name.size());
  m.name.append(prefix_).append(".").append(name);
  m.kind = kind;
  m.value = v;
  out_.push_back(std::move(m));
}

Counter& MetricRegistry::counter(std::string_view name) {
  sync::Guard g(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  sync::Guard g(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  sync::Guard g(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricRegistry::register_source(std::string name, const void* owner,
                                     SourceFn fn) {
  sync::Guard g(mu_);
  sources_.insert_or_assign(std::move(name), Source{owner, std::move(fn)});
}

void MetricRegistry::unregister_source(std::string_view name,
                                       const void* owner) {
  sync::Guard g(mu_);
  const auto it = sources_.find(name);
  if (it != sources_.end() && it->second.owner == owner) sources_.erase(it);
}

Snapshot MetricRegistry::snapshot() const {
  sync::Guard g(mu_);
  Snapshot out;
  for (const auto& [name, c] : counters_) {
    Metric m;
    m.name = name;
    m.kind = MetricKind::Counter;
    m.value = c->value();
    out.push_back(std::move(m));
  }
  for (const auto& [name, g] : gauges_) {
    Metric m;
    m.name = name;
    m.kind = MetricKind::Gauge;
    m.value = g->value();
    out.push_back(std::move(m));
  }
  for (const auto& [name, h] : histograms_) {
    Metric m;
    m.name = name;
    m.kind = MetricKind::Histogram;
    m.count = h->count();
    m.sum = h->sum();
    m.max = h->max();
    m.p50 = h->quantile(0.50);
    m.p95 = h->quantile(0.95);
    m.p99 = h->quantile(0.99);
    m.p999 = h->quantile(0.999);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h->bucket(i)) {
        m.buckets.emplace_back(static_cast<std::uint32_t>(i), h->bucket(i));
      }
    }
    out.push_back(std::move(m));
  }
  for (const auto& [name, src] : sources_) {
    MetricSink sink(name, out);
    src.fn(sink);
  }
  std::sort(out.begin(), out.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return out;
}

}  // namespace vialock::obs
