#include "obs/span.h"

#include <algorithm>

namespace vialock::obs {

std::vector<SpanId>& SpanRecorder::track(std::uint32_t tid) {
  for (auto& [t, stack] : tracks_) {
    if (t == tid) return stack;
  }
  tracks_.emplace_back(tid, std::vector<SpanId>{});
  return tracks_.back().second;
}

const std::vector<SpanId>* SpanRecorder::find_track(std::uint32_t tid) const {
  for (const auto& [t, stack] : tracks_) {
    if (t == tid) return &stack;
  }
  return nullptr;
}

TraceContext SpanRecorder::active_context(std::uint32_t tid) const {
  sync::Guard g(mu_);
  if (const auto* stack = find_track(tid); stack && !stack->empty()) {
    return context_of(stack->back());
  }
  if (!ctx_stack_.empty() && ctx_stack_.back().valid()) {
    return ctx_stack_.back();
  }
  return {};
}

TraceContext SpanRecorder::context_of(SpanId id) const {
  sync::Guard g(mu_);  // recursive: active_context calls in holding mu_
  if (id == kInvalidSpan || id >= spans_.size()) return {};
  const Span& s = spans_[id];
  return TraceContext{s.trace_id, s.span_id, s.parent_id};
}

SpanId SpanRecorder::begin(std::string_view name, std::uint32_t tid) {
  if (!enabled_) return kInvalidSpan;
  sync::Guard g(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kInvalidSpan;
  }
  Span s;
  s.name = std::string(name);
  s.start = clock_.now();
  s.tid = tid;
  std::vector<SpanId>& stack = track(tid);
  s.depth = static_cast<std::uint32_t>(stack.size());
  s.span_id = next_id();
  if (!stack.empty()) {
    // Lexical nesting: child of the innermost open span on this track.
    const Span& parent = spans_[stack.back()];
    s.trace_id = parent.trace_id;
    s.parent_id = parent.span_id;
  } else if (!ctx_stack_.empty() && ctx_stack_.back().valid()) {
    // Ambient context: a message-borne parent from another host/track.
    s.trace_id = ctx_stack_.back().trace_id;
    s.parent_id = ctx_stack_.back().span_id;
  } else {
    // Trace root: a fresh trace identity from the same seeded stream.
    s.trace_id = next_id();
    s.parent_id = 0;
  }
  const auto id = static_cast<SpanId>(spans_.size());
  spans_.push_back(std::move(s));
  stack.push_back(id);
  ++open_;
  if (ring_) ring_->record(clock_.now(), TraceEvent::SpanBegin, tid, id, 0);
  return id;
}

void SpanRecorder::end(SpanId id) {
  if (id == kInvalidSpan) return;
  sync::Guard g(mu_);
  if (id >= spans_.size() || spans_[id].closed()) {
    ++unbalanced_closes_;
    return;
  }
  Span& s = spans_[id];
  s.dur = clock_.now() - s.start;
  s.open = false;
  // Out-of-order closes are tolerated: erase wherever the id sits, innermost
  // first (search from the back).
  std::vector<SpanId>& stack = track(s.tid);
  const auto it = std::find(stack.rbegin(), stack.rend(), id);
  if (it != stack.rend()) stack.erase(std::next(it).base());
  --open_;
  if (ring_) ring_->record(clock_.now(), TraceEvent::SpanEnd, s.tid, id, 0);
}

}  // namespace vialock::obs
