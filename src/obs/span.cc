#include "obs/span.h"

namespace vialock::obs {

void SpanRecorder::bump_depth(std::uint32_t tid, std::int32_t delta) {
  for (auto& [t, d] : depth_) {
    if (t == tid) {
      if (delta < 0) {
        if (d) --d;  // clamped: out-of-order closes never wrap the depth
      } else {
        d += static_cast<std::uint32_t>(delta);
      }
      return;
    }
  }
  if (delta > 0) depth_.emplace_back(tid, static_cast<std::uint32_t>(delta));
}

SpanId SpanRecorder::begin(std::string_view name, std::uint32_t tid) {
  if (!enabled_) return kInvalidSpan;
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kInvalidSpan;
  }
  Span s;
  s.name = std::string(name);
  s.start = clock_.now();
  s.tid = tid;
  s.depth = depth_of(tid);
  const auto id = static_cast<SpanId>(spans_.size());
  spans_.push_back(std::move(s));
  bump_depth(tid, +1);
  ++open_;
  if (ring_) ring_->record(clock_.now(), TraceEvent::SpanBegin, tid, id, 0);
  return id;
}

void SpanRecorder::end(SpanId id) {
  if (id == kInvalidSpan) return;
  if (id >= spans_.size() || spans_[id].closed()) {
    ++unbalanced_closes_;
    return;
  }
  Span& s = spans_[id];
  s.dur = clock_.now() - s.start;
  s.open = false;
  bump_depth(s.tid, -1);
  --open_;
  if (ring_) ring_->record(clock_.now(), TraceEvent::SpanEnd, s.tid, id, 0);
}

}  // namespace vialock::obs
