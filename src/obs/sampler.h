// sampler.h - continuous telemetry over the metric registries (DESIGN.md
// section 16).
//
// Everything obs exports today is an end-of-run snapshot or a crash-time
// flight dump; the dynamics between t=0 and the final report - pinned-frame
// pressure building, reclaim waking, registration churn - are invisible. A
// Sampler closes that gap: driven from the scenario scheduler's virtual
// clock (interval ticks in serial mode, one tick per epoch in threaded
// mode, see scenario/scheduler.h), each sample() merges every host's
// MetricRegistry snapshot into one cluster-wide view - counters and gauges
// sum, histograms merge their log2 buckets and recompute quantiles - and
// appends it to a bounded ring of time-stamped samples.
//
// Exports:
//   timeline_json()         - the deterministic TIMELINE_*.json document:
//                             per-metric series of [t_ns, value, delta,
//                             rate-per-second] points (integer math only,
//                             byte-identical across same-seed serial runs).
//   chrome_counter_events() - counter events (ph "C") for the configured
//                             trace_metrics, spliced into a chrome trace via
//                             the chrome_trace(recs, extra) overload so
//                             rates render next to spans.
//
// SLO watchdogs ride the same ticks: a rule is a *requirement* on a metric
// reference ("svc.kv.op_ns.p99 le 50000"); the tick that observes it
// violated records a firing and calls the hook (the scenario engine uses it
// to flight-dump *before* the run fails its audit), then the rule sleeps
// for window-1 ticks so a persistent violation fires once per window, not
// once per tick.
//
// The sampler itself charges no virtual time and posts no events, so
// enabling it cannot perturb the simulation timeline (the E23 frozen-bytes
// gate keeps holding).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace vialock::obs {

/// Comparison a metric is *required* to satisfy; the rule fires on ticks
/// where it does not.
enum class SloOp : std::uint8_t { Lt, Le, Gt, Ge };

[[nodiscard]] constexpr std::string_view to_string(SloOp op) {
  switch (op) {
    case SloOp::Lt: return "lt";
    case SloOp::Le: return "le";
    case SloOp::Gt: return "gt";
    case SloOp::Ge: return "ge";
  }
  return "?";
}

/// One watchdog rule. `metric` is a metric reference: a plain snapshot name
/// (counter/gauge value, histogram count) or a histogram name suffixed
/// .p50/.p95/.p99/.p999/.count/.sum/.max.
struct SloSpec {
  std::string metric;
  SloOp op = SloOp::Le;
  std::uint64_t threshold = 0;
  std::uint64_t window = 1;  ///< min sample ticks between firings (>= 1)
};

/// One recorded violation.
struct SloFiring {
  std::size_t rule = 0;       ///< index into rules()
  std::uint64_t tick = 0;     ///< 0-based sample tick that observed it
  Nanos when = 0;             ///< virtual time of that tick
  std::uint64_t observed = 0; ///< the metric value that violated the rule
};

class Sampler {
 public:
  struct Config {
    Nanos interval = 1'000'000;        ///< serial-mode sampling period
    std::size_t max_samples = 4096;    ///< ring bound; oldest dropped beyond
    std::vector<std::string> trace_metrics;  ///< counter-overlay references
  };

  /// One retained tick: the cluster-merged metric view at `when`.
  struct Sample {
    Nanos when = 0;
    std::vector<Metric> metrics;  ///< sorted by name
  };

  using SloHook = std::function<void(const SloSpec&, const SloFiring&)>;

  Sampler() = default;
  explicit Sampler(Config cfg) : cfg_(std::move(cfg)) {}
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Registries merged at each tick. Must outlive the sampler; add before
  /// the first sample() so every sample covers the same set.
  void add_registry(const MetricRegistry* reg) { registries_.push_back(reg); }

  /// Extra pull source merged at each tick under `prefix.` - the engine
  /// publishes scheduler and per-worker gauges this way without owning a
  /// registry.
  void add_extra(std::string prefix, MetricRegistry::SourceFn fn) {
    extras_.push_back({std::move(prefix), std::move(fn)});
  }

  void add_slo(SloSpec spec) {
    rules_.push_back(std::move(spec));
    cooldowns_.push_back(0);
  }
  void set_slo_hook(SloHook hook) { hook_ = std::move(hook); }

  /// Take one sample at virtual time `when` and evaluate the SLO rules.
  void sample(Nanos when);

  [[nodiscard]] const std::deque<Sample>& samples() const { return samples_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Ticks that had to rebuild the merge plan (first tick plus every tick
  /// where some source's metric layout changed). Steady-state ticks reuse
  /// the cached plan; this stat is the observability for that cache.
  [[nodiscard]] std::uint64_t relayouts() const { return relayouts_; }
  [[nodiscard]] const std::vector<SloSpec>& rules() const { return rules_; }
  [[nodiscard]] const std::vector<SloFiring>& firings() const {
    return firings_;
  }
  [[nodiscard]] Nanos interval() const { return cfg_.interval; }

  /// The TIMELINE_*.json document (see file comment).
  [[nodiscard]] std::string timeline_json(std::string_view scenario,
                                          std::uint64_t seed) const;

  /// Pre-rendered ph "C" events for Config::trace_metrics, in the shape the
  /// chrome_trace(recs, extra) overload splices ("" when nothing resolves).
  [[nodiscard]] std::string chrome_counter_events() const;

  /// Resolve a metric reference (plain name or quantile/field suffix, see
  /// SloSpec) against a sorted sample. False when nothing matches.
  [[nodiscard]] static bool resolve(const std::vector<Metric>& metrics,
                                    std::string_view ref, std::uint64_t& out);

 private:
  struct Extra {
    std::string prefix;
    MetricRegistry::SourceFn fn;
  };

  /// Per-source reusable snapshot buffer: `raw` holds the source's
  /// emission-order snapshot (filled via snapshot_into / a reuse-mode
  /// MetricSink, overwritten in place), `map` the cached merge plan - raw
  /// index -> index into the skeleton (kNoSlot = cross-kind name clash,
  /// skipped). Both survive across ticks until a source's layout changes,
  /// so the steady-state tick is buffer overwrites plus arithmetic
  /// combines - no sorting, no per-metric allocation - which is what keeps
  /// E27's <=5% overhead gate green.
  struct RegBuf {
    Snapshot raw;
    std::vector<std::uint32_t> map;
    std::uint64_t gen = 0;  ///< registry layout generation `raw` matches
  };

  Config cfg_;
  std::vector<const MetricRegistry*> registries_;
  std::vector<Extra> extras_;
  std::vector<RegBuf> bufs_;   ///< registries_ then extras_, lazily sized
  Snapshot skeleton_;          ///< merged layout, sorted by name, values zero
  std::deque<Sample> samples_;
  std::uint64_t ticks_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t relayouts_ = 0;
  std::vector<SloSpec> rules_;
  std::vector<std::uint64_t> cooldowns_;  ///< ticks each rule still sleeps
  std::vector<SloFiring> firings_;
  SloHook hook_;
};

}  // namespace vialock::obs
