// flight_recorder.h - bounded per-host postmortem capture (DESIGN.md
// section 11).
//
// A FlightRecorder turns the observability substrate a host already carries -
// the SpanRecorder's recent spans, the TraceRing's event tail, the
// MetricRegistry snapshot - into one self-contained JSON document the moment
// something terminal happens: the fault engine fires a fault the transport
// cannot retry through, or an invariant check trips. The document names the
// run's seed, so an incident dump is replayable: rerun the same binary with
// the same seed and the identical timeline (byte-identical dump included)
// falls out.
//
// The recorder holds no copies of anything between dumps - it is a bounded
// *view* assembled at dump time (last `max_spans` closed spans, last
// `max_trace` ring entries), so arming it costs nothing on the hot path.
// Delivery is via an optional sink callback; simkern::Kernel::flight_dump()
// only assembles when a sink is armed, keeping un-instrumented runs free.
// Everything rendered derives from the virtual clock and seeded streams:
// same seed, byte-identical FLIGHT_*.json.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/trace.h"

namespace vialock::obs {

class FlightRecorder {
 public:
  /// Receives every dump: `reason` is the trigger tag ("msg.send_timeout",
  /// "invariant", ...), `json` the complete document.
  using Sink =
      std::function<void(std::string_view reason, const std::string& json)>;

  explicit FlightRecorder(std::size_t max_spans = 128,
                          std::size_t max_trace = 256)
      : max_spans_(max_spans), max_trace_(max_trace) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The workload seed stamped into every dump (0 = unknown).
  void set_seed(std::uint64_t seed) { seed_ = seed; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] bool armed() const { return static_cast<bool>(sink_); }

  /// Assemble the postmortem document from the host's current state, deliver
  /// it to the sink (if armed), and return it.
  std::string dump(std::string_view reason, const SpanRecorder& spans,
                   const TraceRing& trace, const Snapshot& metrics);

  [[nodiscard]] std::uint64_t dumps() const { return dumps_; }

 private:
  std::size_t max_spans_;
  std::size_t max_trace_;
  std::uint64_t seed_ = 0;
  std::uint64_t dumps_ = 0;
  Sink sink_;
};

}  // namespace vialock::obs
