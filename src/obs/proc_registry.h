// proc_registry.h - the single /proc registration interface.
//
// Before this existed every status exporter grew bespoke plumbing: simkern's
// meminfo/vmstat were free functions, /proc/pinmgr another, the agent and
// regcache dumps a third style. Now a component mounts a node once -
// mount(path, owner, render) - and every reader (examples, tests, bench
// --metrics dumps) goes through read()/ls()/read_all(). /proc/metrics and any
// future node register exactly the same way.
//
// Owner tags make rebuild sequences safe: mounting an existing path takes it
// over, and unmount() is a no-op unless the caller still owns the path - so
// "construct replacement, destroy original" (Node::enable_governor, a Mesh
// rebuilding Channels) never unmounts the replacement's node.
//
// Render callbacks run at read() time, so the text always reflects current
// counters; paths are kept in an ordered map, so ls()/read_all() are
// deterministic.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vialock::obs {

class ProcRegistry {
 public:
  using RenderFn = std::function<std::string()>;

  ProcRegistry() = default;
  ProcRegistry(const ProcRegistry&) = delete;
  ProcRegistry& operator=(const ProcRegistry&) = delete;

  /// Mount `render` at `path` (e.g. "vmstat", "via/agent"). An existing path
  /// is taken over by the new owner.
  void mount(std::string path, const void* owner, RenderFn render);

  /// Remove `path` if - and only if - `owner` still owns it.
  void unmount(std::string_view path, const void* owner);

  /// Render one node; nullopt when nothing is mounted at `path`.
  [[nodiscard]] std::optional<std::string> read(std::string_view path) const;

  /// All mounted paths, sorted.
  [[nodiscard]] std::vector<std::string> ls() const;

  /// Every node, concatenated as "== /proc/<path> ==" sections (debug dumps).
  [[nodiscard]] std::string read_all() const;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    const void* owner = nullptr;
    RenderFn render;
  };

  std::map<std::string, Node, std::less<>> nodes_;
};

}  // namespace vialock::obs
