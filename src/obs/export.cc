#include "obs/export.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace vialock::obs {

namespace {

/// One complete-event ("X") line for a closed span under process `pid`.
void emit_span(std::ostringstream& os, const SpanRecorder::Span& s,
               std::uint32_t pid) {
  os << "\n  {\"name\": " << json_quote(s.name)
     << ", \"cat\": \"vialock\", \"ph\": \"X\", \"ts\": "
     << trace_micros(s.start) << ", \"dur\": " << trace_micros(s.dur)
     << ", \"pid\": " << pid
     << ", \"tid\": " << s.tid << ", \"args\": {\"depth\": " << s.depth;
  if (s.trace_id != 0) {
    os << ", \"trace\": \"" << json_hex(s.trace_id) << "\", \"span\": \""
       << json_hex(s.span_id) << "\", \"parent\": \"" << json_hex(s.parent_id)
       << "\"";
  }
  os << "}}";
}

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out + "\"";
}

std::string json_hex(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), kDigits[v & 0xF]);
    v >>= 4;
  } while (v);
  return "0x" + out;
}

std::string trace_micros(Nanos ns) {
  std::string out = std::to_string(ns / 1000);
  const auto frac = static_cast<std::uint32_t>(ns % 1000);
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + frac / 10 % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

std::array<std::pair<std::string_view, std::uint64_t>, 7> histogram_fields(
    const Metric& m) {
  return {{{"count", m.count},
           {"sum", m.sum},
           {"p50", m.p50},
           {"p95", m.p95},
           {"p99", m.p99},
           {"p999", m.p999},
           {"max", m.max}}};
}

void append_histogram_json(std::ostream& os, const Metric& m) {
  for (const auto& [field, v] : histogram_fields(m)) {
    os << ", \"" << field << "\": " << v;
  }
}

std::string to_proc_text(const Snapshot& snap) {
  std::ostringstream os;
  for (const Metric& m : snap) {
    if (m.kind == MetricKind::Histogram) {
      for (const auto& [field, v] : histogram_fields(m)) {
        os << m.name << "." << field << " " << v << "\n";
      }
    } else {
      os << m.name << " " << m.value << "\n";
    }
  }
  return os.str();
}

std::string to_json(const Snapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"metrics\": [";
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const Metric& m = snap[i];
    os << (i ? "," : "") << "\n    {\"name\": " << json_quote(m.name)
       << ", \"kind\": " << json_quote(to_string(m.kind));
    if (m.kind == MetricKind::Histogram) {
      append_histogram_json(os, m);
      os << ", \"buckets\": [";
      for (std::size_t b = 0; b < m.buckets.size(); ++b) {
        os << (b ? ", " : "") << "[" << m.buckets[b].first << ", "
           << m.buckets[b].second << "]";
      }
      os << "]";
    } else {
      os << ", \"value\": " << m.value;
    }
    os << "}";
  }
  os << (snap.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::string chrome_trace(const SpanRecorder& rec) {
  return chrome_trace(std::vector<const SpanRecorder*>{&rec});
}

std::string chrome_trace(const std::vector<const SpanRecorder*>& recs) {
  return chrome_trace(recs, std::string_view{});
}

std::string chrome_trace(const std::vector<const SpanRecorder*>& recs,
                         std::string_view extra_events) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  for (std::size_t pid = 0; pid < recs.size(); ++pid) {
    for (const SpanRecorder::Span& s : recs[pid]->spans()) {
      if (s.open) continue;  // unbalanced begin: not part of the timeline
      if (!first) os << ",";
      emit_span(os, s, static_cast<std::uint32_t>(pid));
      first = false;
    }
  }

  // Flow stitching: every trace whose spans live in >1 recorder becomes one
  // arrow chain, ordered by virtual start time (ties: pid, then span index -
  // all deterministic). Single-recorder traces are already visible as lexical
  // nesting and stay arrow-free.
  struct FlowPoint {
    Nanos start;
    std::uint32_t pid;
    std::uint32_t index;  // span index within its recorder
    std::uint32_t tid;
    std::uint64_t trace_id;
  };
  std::vector<FlowPoint> points;
  for (std::size_t pid = 0; pid < recs.size(); ++pid) {
    const auto& spans = recs[pid]->spans();
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const SpanRecorder::Span& s = spans[i];
      if (s.open || s.trace_id == 0) continue;
      points.push_back({s.start, static_cast<std::uint32_t>(pid),
                        static_cast<std::uint32_t>(i), s.tid, s.trace_id});
    }
  }
  std::sort(points.begin(), points.end(),
            [](const FlowPoint& a, const FlowPoint& b) {
              return std::tie(a.start, a.pid, a.index) <
                     std::tie(b.start, b.pid, b.index);
            });
  // Group in first-seen order (points are globally time-sorted already).
  std::vector<std::uint64_t> trace_order;
  for (const FlowPoint& p : points) {
    if (std::find(trace_order.begin(), trace_order.end(), p.trace_id) ==
        trace_order.end()) {
      trace_order.push_back(p.trace_id);
    }
  }
  for (const std::uint64_t trace_id : trace_order) {
    std::vector<const FlowPoint*> chain;
    bool multi_pid = false;
    for (const FlowPoint& p : points) {
      if (p.trace_id != trace_id) continue;
      if (!chain.empty() && chain.front()->pid != p.pid) multi_pid = true;
      chain.push_back(&p);
    }
    if (!multi_pid || chain.size() < 2) continue;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const FlowPoint& p = *chain[i];
      const char* ph = i == 0 ? "s" : (i + 1 == chain.size() ? "f" : "t");
      os << (first ? "" : ",") << "\n  {\"name\": \"trace\", "
         << "\"cat\": \"vialock\", \"ph\": \"" << ph << "\", \"id\": \""
         << json_hex(trace_id) << "\", \"ts\": " << trace_micros(p.start)
         << ", \"pid\": " << p.pid << ", \"tid\": " << p.tid;
      if (ph[0] == 'f') os << ", \"bp\": \"e\"";
      os << "}";
      first = false;
    }
  }
  if (!extra_events.empty()) {
    os << (first ? "" : ",") << extra_events;
    first = false;
  }
  os << (first ? "" : "\n") << "]}\n";
  return os.str();
}

}  // namespace vialock::obs
