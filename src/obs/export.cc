#include "obs/export.h"

#include <sstream>

namespace vialock::obs {

namespace {

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out + "\"";
}

/// Virtual nanoseconds as decimal microseconds ("12.345"), integer math only.
std::string micros(Nanos ns) {
  std::string out = std::to_string(ns / 1000);
  const auto frac = static_cast<std::uint32_t>(ns % 1000);
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + frac / 10 % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

}  // namespace

std::string to_proc_text(const Snapshot& snap) {
  std::ostringstream os;
  for (const Metric& m : snap) {
    if (m.kind == MetricKind::Histogram) {
      os << m.name << ".count " << m.count << "\n"
         << m.name << ".sum " << m.sum << "\n"
         << m.name << ".p50 " << m.p50 << "\n"
         << m.name << ".p99 " << m.p99 << "\n"
         << m.name << ".max " << m.max << "\n";
    } else {
      os << m.name << " " << m.value << "\n";
    }
  }
  return os.str();
}

std::string to_json(const Snapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"metrics\": [";
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const Metric& m = snap[i];
    os << (i ? "," : "") << "\n    {\"name\": " << quote(m.name)
       << ", \"kind\": " << quote(to_string(m.kind));
    if (m.kind == MetricKind::Histogram) {
      os << ", \"count\": " << m.count << ", \"sum\": " << m.sum
         << ", \"p50\": " << m.p50 << ", \"p99\": " << m.p99
         << ", \"max\": " << m.max << ", \"buckets\": [";
      for (std::size_t b = 0; b < m.buckets.size(); ++b) {
        os << (b ? ", " : "") << "[" << m.buckets[b].first << ", "
           << m.buckets[b].second << "]";
      }
      os << "]";
    } else {
      os << ", \"value\": " << m.value;
    }
    os << "}";
  }
  os << (snap.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::string chrome_trace(const SpanRecorder& rec) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  for (const SpanRecorder::Span& s : rec.spans()) {
    if (s.open) continue;  // unbalanced begin: not part of the timeline
    os << (first ? "" : ",") << "\n  {\"name\": " << quote(s.name)
       << ", \"cat\": \"vialock\", \"ph\": \"X\", \"ts\": " << micros(s.start)
       << ", \"dur\": " << micros(s.dur) << ", \"pid\": 0, \"tid\": " << s.tid
       << ", \"args\": {\"depth\": " << s.depth << "}}";
    first = false;
  }
  os << (first ? "" : "\n") << "]}\n";
  return os.str();
}

}  // namespace vialock::obs
