// span.h - sim-clock scoped spans over the virtual Clock.
//
// A span is a named [begin, end) interval of *virtual* time - the same
// deterministic time base every cost in the simulation is charged against -
// so recorded timelines are byte-identical across same-seed runs and show
// exactly where the modelled nanoseconds of a registration, a reclaim pass or
// a transfer went. Spans layer on the existing TraceRing: with mirror_to()
// set, every begin/end also drops a SpanBegin/SpanEnd event into the ring, so
// post-mortem tail dumps interleave spans with page-level events.
//
// Causal tracing (DESIGN.md section 11): every recorded span carries a
// (trace_id, span_id, parent_id) triple drawn from a per-recorder SplitMix64
// ID stream. IDs are deterministic: a recorder seeded identically and fed the
// same begin/end sequence allocates the same ids, so trace exports stay
// byte-identical across same-seed runs. Parentage resolves in order:
//   1. the innermost open span on the same track (lexical nesting), else
//   2. the top of the ambient context stack (push_context / pop_context -
//      how a remote trace context carried in-band with a message adopts the
//      spans recorded on the receiving host), else
//   3. a fresh trace_id: the span is a trace root.
// Cross-host propagation never shares allocators: hosts are seeded disjointly
// (via::Cluster::add_node) and only the *values* travel in message headers.
//
// Recording is off by default (enable(true) to arm); a disabled recorder
// costs one branch per ScopedSpan. Capacity is bounded: past `max_spans`,
// begins are dropped and counted (dropped()), never reallocated without
// bound. Unbalanced closes - end() of an invalid, unknown, or already-closed
// span - are counted no-ops (unbalanced_closes()); spans still open at export
// time simply stay out of the finished set. obs::chrome_trace() turns the
// finished spans into a chrome://tracing / Perfetto-loadable JSON timeline,
// with flow events stitching spans that share a trace_id across recorders.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sync/mutex.h"
#include "sync/policy.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/trace.h"

namespace vialock::obs {

using SpanId = std::uint32_t;
inline constexpr SpanId kInvalidSpan = static_cast<SpanId>(-1);

/// The causal triple a span carries and a message propagates in-band.
/// trace_id == 0 means "no context" (the invalid sentinel; the allocator
/// never emits 0).
struct TraceContext {
  std::uint64_t trace_id = 0;   ///< whole-request identity, stable end to end
  std::uint64_t span_id = 0;    ///< the span children should name as parent
  std::uint64_t parent_id = 0;  ///< that span's own parent (0 = trace root)

  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

class SpanRecorder {
 public:
  struct Span {
    std::string name;
    Nanos start = 0;
    Nanos dur = 0;
    std::uint32_t tid = 0;    ///< logical track (0 = default)
    std::uint32_t depth = 0;  ///< nesting depth within the track at begin
    bool open = true;
    std::uint64_t trace_id = 0;   ///< causal trace this span belongs to
    std::uint64_t span_id = 0;    ///< globally-unique id (per seeded stream)
    std::uint64_t parent_id = 0;  ///< span_id of the parent (0 = trace root)

    [[nodiscard]] bool closed() const { return !open; }
  };

  explicit SpanRecorder(const Clock& clock, std::size_t max_spans = 1 << 16)
      : clock_(clock), max_spans_(max_spans), ids_(kDefaultIdSeed) {}

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Execution mode: threaded serializes begin/end (recorders are per host
  /// and thread-confined by the engine's host guards, but the shared-agent
  /// microbench can drive one recorder from several real threads; note the
  /// span ORDER then depends on interleaving, so threaded traces are not
  /// byte-comparable - DESIGN.md section 15). Serial is a no-op branch.
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

  /// Also record SpanBegin/SpanEnd events into `ring` (nullptr detaches).
  void mirror_to(TraceRing* ring) { ring_ = ring; }

  /// Reset the ID stream to `seed`. Hosts in one cluster are seeded with
  /// disjoint values so span_ids never collide across a merged export.
  void seed_ids(std::uint64_t seed) {
    id_seed_ = seed;
    ids_ = SplitMix64(seed);
  }

  /// Open a span named `name` on track `tid` at the clock's current virtual
  /// time. Returns kInvalidSpan (and records nothing) when disabled or full.
  [[nodiscard]] SpanId begin(std::string_view name, std::uint32_t tid = 0);

  /// Close `id` at the current virtual time. Closing kInvalidSpan is free;
  /// closing an unknown or already-closed id is a counted no-op.
  void end(SpanId id);

  /// Adopt `ctx` as the parent for spans that would otherwise start a fresh
  /// trace (no enclosing open span on their track). Invalid contexts are
  /// pushed too - pop_context() stays strictly balanced.
  void push_context(const TraceContext& ctx) { ctx_stack_.push_back(ctx); }
  void pop_context() {
    if (!ctx_stack_.empty()) ctx_stack_.pop_back();
  }

  /// The context a child span (or an outgoing message header) should carry:
  /// the innermost open span on `tid`, else the ambient stack top, else
  /// invalid.
  [[nodiscard]] TraceContext active_context(std::uint32_t tid = 0) const;

  /// The causal triple of a recorded span (invalid for kInvalidSpan).
  [[nodiscard]] TraceContext context_of(SpanId id) const;

  /// All spans in begin order (open ones included; exporters skip them).
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t open_spans() const { return open_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t unbalanced_closes() const {
    return unbalanced_closes_;
  }
  [[nodiscard]] const Clock& clock() const { return clock_; }

  void clear() {
    spans_.clear();
    tracks_.clear();
    ctx_stack_.clear();
    open_ = 0;
    dropped_ = 0;
    unbalanced_closes_ = 0;
    ids_ = SplitMix64(id_seed_);
  }

 private:
  static constexpr std::uint64_t kDefaultIdSeed = 0x5649414C4F434BULL; // "VIALOCK"

  /// The open-span stack for `tid`, created on demand. Flat vector (tracks
  /// are few: one per pid at most), insertion-ordered for determinism.
  std::vector<SpanId>& track(std::uint32_t tid);
  [[nodiscard]] const std::vector<SpanId>* find_track(std::uint32_t tid) const;

  /// Next nonzero id from the seeded stream (0 is the invalid sentinel).
  std::uint64_t next_id() {
    std::uint64_t v = ids_.next();
    while (v == 0) v = ids_.next();
    return v;
  }

  const Clock& clock_;
  std::size_t max_spans_;
  /// Serializes spans_/tracks_/ctx_stack_ mutations in threaded mode.
  mutable sync::Mutex mu_;
  bool enabled_ = false;
  TraceRing* ring_ = nullptr;
  std::vector<Span> spans_;
  std::vector<std::pair<std::uint32_t, std::vector<SpanId>>> tracks_;
  std::vector<TraceContext> ctx_stack_;
  std::size_t open_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t unbalanced_closes_ = 0;
  std::uint64_t id_seed_ = kDefaultIdSeed;
  SplitMix64 ids_;
};

/// RAII span: opens at construction, closes when the scope exits. One branch
/// when the recorder is disabled.
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder& rec, std::string_view name, std::uint32_t tid = 0)
      : rec_(rec), id_(rec.enabled() ? rec.begin(name, tid) : kInvalidSpan) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { rec_.end(id_); }

  [[nodiscard]] SpanId id() const { return id_; }

  /// The causal triple this span carries (invalid when disabled/dropped).
  [[nodiscard]] TraceContext context() const { return rec_.context_of(id_); }

 private:
  SpanRecorder& rec_;
  SpanId id_;
};

/// RAII ambient context: push_context at construction, pop at scope exit.
/// Pushes only valid contexts onto enabled recorders (free otherwise), so a
/// disabled observability stack stays one branch per site.
class ScopedTraceContext {
 public:
  ScopedTraceContext(SpanRecorder& rec, const TraceContext& ctx)
      : rec_(rec), pushed_(rec.enabled() && ctx.valid()) {
    if (pushed_) rec_.push_context(ctx);
  }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  ~ScopedTraceContext() {
    if (pushed_) rec_.pop_context();
  }

 private:
  SpanRecorder& rec_;
  bool pushed_;
};

}  // namespace vialock::obs
