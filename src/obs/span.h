// span.h - sim-clock scoped spans over the virtual Clock.
//
// A span is a named [begin, end) interval of *virtual* time - the same
// deterministic time base every cost in the simulation is charged against -
// so recorded timelines are byte-identical across same-seed runs and show
// exactly where the modelled nanoseconds of a registration, a reclaim pass or
// a transfer went. Spans layer on the existing TraceRing: with mirror_to()
// set, every begin/end also drops a SpanBegin/SpanEnd event into the ring, so
// post-mortem tail dumps interleave spans with page-level events.
//
// Recording is off by default (enable(true) to arm); a disabled recorder
// costs one branch per ScopedSpan. Capacity is bounded: past `max_spans`,
// begins are dropped and counted (dropped()), never reallocated without
// bound. Unbalanced closes - end() of an invalid, unknown, or already-closed
// span - are counted no-ops (unbalanced_closes()); spans still open at export
// time simply stay out of the finished set. obs::chrome_trace() turns the
// finished spans into a chrome://tracing / Perfetto-loadable JSON timeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/trace.h"

namespace vialock::obs {

using SpanId = std::uint32_t;
inline constexpr SpanId kInvalidSpan = static_cast<SpanId>(-1);

class SpanRecorder {
 public:
  struct Span {
    std::string name;
    Nanos start = 0;
    Nanos dur = 0;
    std::uint32_t tid = 0;    ///< logical track (0 = default)
    std::uint32_t depth = 0;  ///< nesting depth within the track at begin
    bool open = true;

    [[nodiscard]] bool closed() const { return !open; }
  };

  explicit SpanRecorder(const Clock& clock, std::size_t max_spans = 1 << 16)
      : clock_(clock), max_spans_(max_spans) {}

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Also record SpanBegin/SpanEnd events into `ring` (nullptr detaches).
  void mirror_to(TraceRing* ring) { ring_ = ring; }

  /// Open a span named `name` on track `tid` at the clock's current virtual
  /// time. Returns kInvalidSpan (and records nothing) when disabled or full.
  [[nodiscard]] SpanId begin(std::string_view name, std::uint32_t tid = 0);

  /// Close `id` at the current virtual time. Closing kInvalidSpan is free;
  /// closing an unknown or already-closed id is a counted no-op.
  void end(SpanId id);

  /// All spans in begin order (open ones included; exporters skip them).
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t open_spans() const { return open_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t unbalanced_closes() const {
    return unbalanced_closes_;
  }
  [[nodiscard]] const Clock& clock() const { return clock_; }

  void clear() {
    spans_.clear();
    depth_.clear();
    open_ = 0;
    dropped_ = 0;
    unbalanced_closes_ = 0;
  }

 private:
  [[nodiscard]] std::uint32_t depth_of(std::uint32_t tid) const {
    for (const auto& [t, d] : depth_)
      if (t == tid) return d;
    return 0;
  }
  void bump_depth(std::uint32_t tid, std::int32_t delta);

  const Clock& clock_;
  std::size_t max_spans_;
  bool enabled_ = false;
  TraceRing* ring_ = nullptr;
  std::vector<Span> spans_;
  /// Per-track open-span depth; flat vector (tracks are few: one per pid at
  /// most), insertion-ordered for determinism.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> depth_;
  std::size_t open_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t unbalanced_closes_ = 0;
};

/// RAII span: opens at construction, closes when the scope exits. One branch
/// when the recorder is disabled.
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder& rec, std::string_view name, std::uint32_t tid = 0)
      : rec_(rec), id_(rec.enabled() ? rec.begin(name, tid) : kInvalidSpan) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { rec_.end(id_); }

 private:
  SpanRecorder& rec_;
  SpanId id_;
};

}  // namespace vialock::obs
