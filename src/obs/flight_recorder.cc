#include "obs/flight_recorder.h"

#include <sstream>

#include "obs/export.h"

namespace vialock::obs {

std::string FlightRecorder::dump(std::string_view reason,
                                 const SpanRecorder& spans,
                                 const TraceRing& trace,
                                 const Snapshot& metrics) {
  std::ostringstream os;
  os << "{\n  \"reason\": " << json_quote(reason)
     << ",\n  \"seed\": " << seed_
     << ",\n  \"now_ns\": " << spans.clock().now()
     << ",\n  \"span_drops\": " << spans.dropped()
     << ",\n  \"spans\": [";

  // Last max_spans_ *closed* spans, oldest first, with their causal triples.
  const auto& all = spans.spans();
  std::size_t closed = 0;
  for (const auto& s : all) closed += s.closed() ? 1 : 0;
  std::size_t skip = closed > max_spans_ ? closed - max_spans_ : 0;
  bool first = true;
  for (const auto& s : all) {
    if (s.open) continue;
    if (skip) {
      --skip;
      continue;
    }
    os << (first ? "" : ",") << "\n    {\"name\": " << json_quote(s.name)
       << ", \"start_ns\": " << s.start << ", \"dur_ns\": " << s.dur
       << ", \"tid\": " << s.tid << ", \"depth\": " << s.depth
       << ", \"trace\": \"" << json_hex(s.trace_id) << "\", \"span\": \""
       << json_hex(s.span_id) << "\", \"parent\": \"" << json_hex(s.parent_id)
       << "\"}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"trace\": [";

  first = true;
  for (const TraceRing::Entry& e : trace.tail(max_trace_)) {
    os << (first ? "" : ",") << "\n    {\"when_ns\": " << e.when
       << ", \"event\": " << json_quote(to_string(e.event))
       << ", \"pid\": " << e.pid << ", \"addr\": \"" << json_hex(e.addr)
       << "\", \"pfn\": " << e.pfn << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"metrics\": [";

  first = true;
  for (const Metric& m : metrics) {
    os << (first ? "" : ",") << "\n    {\"name\": " << json_quote(m.name)
       << ", \"kind\": " << json_quote(to_string(m.kind));
    if (m.kind == MetricKind::Histogram) {
      append_histogram_json(os, m);
    } else {
      os << ", \"value\": " << m.value;
    }
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";

  ++dumps_;
  const std::string json = os.str();
  if (sink_) sink_(reason, json);
  return json;
}

}  // namespace vialock::obs
