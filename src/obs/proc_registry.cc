#include "obs/proc_registry.h"

namespace vialock::obs {

void ProcRegistry::mount(std::string path, const void* owner,
                         RenderFn render) {
  nodes_.insert_or_assign(std::move(path), Node{owner, std::move(render)});
}

void ProcRegistry::unmount(std::string_view path, const void* owner) {
  const auto it = nodes_.find(path);
  if (it != nodes_.end() && it->second.owner == owner) nodes_.erase(it);
}

std::optional<std::string> ProcRegistry::read(std::string_view path) const {
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.render();
}

std::vector<std::string> ProcRegistry::ls() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [path, node] : nodes_) out.push_back(path);
  return out;
}

std::string ProcRegistry::read_all() const {
  std::string out;
  for (const auto& [path, node] : nodes_) {
    out += "== /proc/" + path + " ==\n";
    out += node.render();
  }
  return out;
}

}  // namespace vialock::obs
