// metrics.h - the unified metric registry (DESIGN.md section 10).
//
// One way to count things: every subsystem publishes its counters, gauges and
// latency histograms through a MetricRegistry keyed `subsystem.component.name`
// (first dot-segment = subsystem: simkern, via, core, pinmgr, msg, fault,
// obs). Two publication styles coexist:
//
//   * owned instruments - counter()/gauge()/histogram() hand out get-or-create
//     handles the hot path updates directly (ioctl latency histograms, DMA
//     byte sizes). Handles are stable for the registry's lifetime.
//   * pull sources - register_source(name, owner, fn) adds a callback that
//     emits a component's existing stats struct at snapshot time, so the
//     long-lived per-subsystem counter structs (KernelStats, AgentStats,
//     GovernorStats, ...) keep their cheap `++stats_.x` hot paths while still
//     exporting through the one registry.
//
// Sources carry an owner tag: re-registering a name replaces the previous
// source (a rebuilt component - enable_governor(), a new Channel - simply
// takes the name over), and unregister_source() is a no-op unless the caller
// still owns the name. That makes construct-new-then-destroy-old sequences
// safe without ordering gymnastics.
//
// snapshot() merges owned instruments and pulled sources into one vector
// sorted by metric name. Every value is derived from the deterministic
// simulation (virtual clock, seeded RNG), so same-seed runs produce
// byte-identical snapshots - the property the exporters (src/obs/export.h)
// and the benches' --metrics flag rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sync/mutex.h"
#include "sync/policy.h"
#include "sync/relaxed.h"

namespace vialock::obs {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

[[nodiscard]] constexpr std::string_view to_string(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

/// Monotonic event count. Relaxed-atomic so instruments owned by a registry
/// shared across real threads (the E26 microbench drives one host's agent
/// from N threads) stay tear-free; serial cost is a plain relaxed RMW.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_.load(); }
  void reset() { value_ = 0; }

 private:
  sync::Relaxed value_;
};

/// Point-in-time level (queue depth, frames in use).
class Gauge {
 public:
  void set(std::uint64_t v) { value_ = v; }
  void add(std::int64_t d) { value_ += static_cast<std::uint64_t>(d); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(); }

 private:
  sync::Relaxed value_;
};

/// Log2-bucketed histogram for latency-like quantities (same bucketing as
/// util/stats.h Log2Histogram, plus a running sum and exact max so exporters
/// can report mean and tail without keeping samples).
///
/// Bucket i holds values whose bit-width is i: bucket 0 = {0}, bucket 1 =
/// {1}, bucket k = [2^(k-1), 2^k - 1]. upper_bound(i) is the largest value
/// bucket i admits.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    max_.fetch_max(v);  // values are unsigned, so a running max from 0 works
  }

  [[nodiscard]] std::uint64_t count() const { return count_.load(); }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(); }
  [[nodiscard]] std::uint64_t max() const {
    return count_.load() ? max_.load() : 0;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load();
  }

  /// Upper bound of the bucket holding quantile q in [0,1]; 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    const std::uint64_t n = count_.load();
    if (n == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > target) return upper_bound(i);
    }
    return upper_bound(kBuckets - 1);
  }

  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    return static_cast<std::size_t>(64 - __builtin_clzll(v));
  }
  [[nodiscard]] static constexpr std::uint64_t upper_bound(std::size_t i) {
    return i == 0 ? 0 : (i >= 64 ? ~0ULL : (1ULL << i) - 1);
  }

 private:
  sync::Relaxed buckets_[kBuckets];
  sync::Relaxed count_;
  sync::Relaxed sum_;
  sync::Relaxed max_;
};

/// One metric in a snapshot. Counters/gauges carry `value`; histograms carry
/// count/sum/max, the non-empty buckets, and precomputed tail quantiles.
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t value = 0;
  // Histogram payload:
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;  ///< idx -> n
};

/// All metrics, sorted by name (deterministic across same-seed runs).
using Snapshot = std::vector<Metric>;

/// The emit interface pull sources write through. Names are automatically
/// prefixed with the source's registered name ("via.agent" + "hits" ->
/// "via.agent.hits").
class MetricSink {
 public:
  MetricSink(std::string_view prefix, Snapshot& out)
      : prefix_(prefix), out_(out) {}

  void counter(std::string_view name, std::uint64_t v) {
    emit(name, MetricKind::Counter, v);
  }
  void gauge(std::string_view name, std::uint64_t v) {
    emit(name, MetricKind::Gauge, v);
  }

 private:
  void emit(std::string_view name, MetricKind kind, std::uint64_t v);

  std::string_view prefix_;
  Snapshot& out_;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // --- owned instruments (hot-path handles, stable addresses) ----------------
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  // --- pull sources -----------------------------------------------------------
  using SourceFn = std::function<void(MetricSink&)>;
  /// Register `fn` to emit metrics under `name.` at snapshot time. A name
  /// already registered is taken over (the previous owner's later
  /// unregister_source becomes a no-op).
  void register_source(std::string name, const void* owner, SourceFn fn);
  /// Remove `name` if - and only if - `owner` still owns it.
  void unregister_source(std::string_view name, const void* owner);
  [[nodiscard]] std::size_t num_sources() const { return sources_.size(); }

  /// Merge owned instruments and pulled sources, sorted by metric name.
  [[nodiscard]] Snapshot snapshot() const;

  /// Execution mode: threaded serializes the instrument/source maps (handle
  /// get-or-create can race between real threads); the instruments
  /// themselves are relaxed atomics, so hot-path updates stay lock-free.
  /// Each host owns its registry; merged reads happen after workers join.
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

 private:
  struct Source {
    const void* owner = nullptr;
    SourceFn fn;
  };

  /// Serializes the maps below, never held during instrument updates.
  mutable sync::Mutex mu_;
  // Ordered maps: iteration (and therefore snapshot order before the final
  // sort) is deterministic. unique_ptr keeps instrument addresses stable
  // across later insertions.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, Source, std::less<>> sources_;
};

}  // namespace vialock::obs
