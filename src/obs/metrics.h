// metrics.h - the unified metric registry (DESIGN.md section 10).
//
// One way to count things: every subsystem publishes its counters, gauges and
// latency histograms through a MetricRegistry keyed `subsystem.component.name`
// (first dot-segment = subsystem: simkern, via, core, pinmgr, msg, fault,
// obs). Two publication styles coexist:
//
//   * owned instruments - counter()/gauge()/histogram() hand out get-or-create
//     handles the hot path updates directly (ioctl latency histograms, DMA
//     byte sizes). Handles are stable for the registry's lifetime.
//   * pull sources - register_source(name, owner, fn) adds a callback that
//     emits a component's existing stats struct at snapshot time, so the
//     long-lived per-subsystem counter structs (KernelStats, AgentStats,
//     GovernorStats, ...) keep their cheap `++stats_.x` hot paths while still
//     exporting through the one registry.
//
// Sources carry an owner tag: re-registering a name replaces the previous
// source (a rebuilt component - enable_governor(), a new Channel - simply
// takes the name over), and unregister_source() is a no-op unless the caller
// still owns the name. That makes construct-new-then-destroy-old sequences
// safe without ordering gymnastics.
//
// snapshot() merges owned instruments and pulled sources into one vector
// sorted by metric name. Every value is derived from the deterministic
// simulation (virtual clock, seeded RNG), so same-seed runs produce
// byte-identical snapshots - the property the exporters (src/obs/export.h)
// and the benches' --metrics flag rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sync/mutex.h"
#include "sync/policy.h"
#include "sync/relaxed.h"

namespace vialock::sync {
class RangeLock;
}  // namespace vialock::sync

namespace vialock::obs {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

[[nodiscard]] constexpr std::string_view to_string(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

/// Monotonic event count. Relaxed-atomic so instruments owned by a registry
/// shared across real threads (the E26 microbench drives one host's agent
/// from N threads) stay tear-free; serial cost is a plain relaxed RMW.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_.load(); }
  void reset() { value_ = 0; }

 private:
  sync::Relaxed value_;
};

/// Point-in-time level (queue depth, frames in use).
class Gauge {
 public:
  void set(std::uint64_t v) { value_ = v; }
  void add(std::int64_t d) { value_ += static_cast<std::uint64_t>(d); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(); }

 private:
  sync::Relaxed value_;
};

/// Log2-bucketed histogram for latency-like quantities (same bucketing as
/// util/stats.h Log2Histogram, plus a running sum and exact max so exporters
/// can report mean and tail without keeping samples).
///
/// Bucket i holds values whose bit-width is i: bucket 0 = {0}, bucket 1 =
/// {1}, bucket k = [2^(k-1), 2^k - 1]. upper_bound(i) is the largest value
/// bucket i admits.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    max_.fetch_max(v);  // values are unsigned, so a running max from 0 works
  }

  [[nodiscard]] std::uint64_t count() const { return count_.load(); }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(); }
  [[nodiscard]] std::uint64_t max() const {
    return count_.load() ? max_.load() : 0;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load();
  }

  /// Upper bound of the bucket holding quantile q in [0,1]; 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    const std::uint64_t n = count_.load();
    if (n == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > target) return upper_bound(i);
    }
    return upper_bound(kBuckets - 1);
  }

  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    return static_cast<std::size_t>(64 - __builtin_clzll(v));
  }
  [[nodiscard]] static constexpr std::uint64_t upper_bound(std::size_t i) {
    return i == 0 ? 0 : (i >= 64 ? ~0ULL : (1ULL << i) - 1);
  }

  /// Fill a snapshot Metric (count/sum/max, non-empty buckets, all four
  /// tail quantiles) in a single pass over the bucket array - the sampler
  /// calls this on every tick for every owned histogram, where the separate
  /// quantile() walks would touch the (cache-cold) buckets six times over.
  void snapshot_to(struct Metric& m) const;

 private:
  sync::Relaxed buckets_[kBuckets];
  sync::Relaxed count_;
  sync::Relaxed sum_;
  sync::Relaxed max_;
};

/// One metric in a snapshot. Counters/gauges carry `value`; histograms carry
/// count/sum/max, the non-empty buckets, and precomputed tail quantiles.
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t value = 0;
  // Histogram payload:
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;  ///< idx -> n
};

/// All metrics, sorted by name (deterministic across same-seed runs).
using Snapshot = std::vector<Metric>;

/// Merge-plan slot meaning "skip this emission" (cross-kind name clash).
inline constexpr std::uint32_t kNoFoldSlot = ~std::uint32_t{0};

/// Add `src`'s (bucket index, count) pairs into the sorted list `dst` in
/// place (no temporary): the cross-host histogram merge primitive.
void add_buckets(std::vector<std::pair<std::uint32_t, std::uint64_t>>& dst,
                 const std::vector<std::pair<std::uint32_t, std::uint64_t>>& src);

/// The emit interface pull sources write through. Names are automatically
/// prefixed with the source's registered name ("via.agent" + "hits" ->
/// "via.agent.hits").
class MetricSink {
 public:
  MetricSink(std::string_view prefix, Snapshot& out)
      : prefix_(prefix), out_(out) {}
  /// Reuse mode (snapshot_into): when `cursor` is non-null, each emit first
  /// tries to overwrite out[*cursor] in place - matching name and kind, no
  /// string allocation - and falls back to fresh appends (truncating the
  /// stale tail) the moment the emission layout diverges from the buffer.
  /// `trusted` additionally skips the name comparison (kind is still
  /// checked): the registry passes it when its layout generation proves the
  /// buffer was filled from the same source list, so the steady-state tick
  /// never touches the stored name strings at all.
  MetricSink(std::string_view prefix, Snapshot& out, std::size_t* cursor,
             bool trusted = false)
      : prefix_(prefix), out_(out), cursor_(cursor), trusted_(trusted) {}

  /// Fold mode (MetricRegistry::fold_into): each emit combines its value
  /// straight into `target[map[*cursor]]` - counters/gauges add, histograms
  /// merge - and never touches names or allocates. Only safe when the
  /// caller has proven (via the registry's layout generation) that the map
  /// was planned from this exact emission layout.
  struct FoldTag {};
  MetricSink(FoldTag, std::string_view prefix, Snapshot& target,
             const std::vector<std::uint32_t>& map, std::size_t* cursor)
      : prefix_(prefix), out_(target), cursor_(cursor), fold_map_(&map) {}

  void counter(std::string_view name, std::uint64_t v) {
    emit(name, MetricKind::Counter, v);
  }
  void gauge(std::string_view name, std::uint64_t v) {
    emit(name, MetricKind::Gauge, v);
  }
  /// Emit a pre-aggregated histogram (a pull source exporting a stats
  /// struct's wait histogram). Bucket indices use the same log2 scheme as
  /// obs::Histogram, so cross-host merges can recompute quantiles.
  void histogram(std::string_view name, std::uint64_t count, std::uint64_t sum,
                 std::uint64_t max, std::uint64_t p50, std::uint64_t p95,
                 std::uint64_t p99, std::uint64_t p999,
                 std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets);

  /// True once a reuse-mode emit had to abandon in-place overwrites.
  [[nodiscard]] bool fell_back() const { return fallback_; }

 private:
  void emit(std::string_view name, MetricKind kind, std::uint64_t v);
  /// The in-place slot for a reuse-mode emit, or nullptr (append fresh).
  [[nodiscard]] Metric* reuse_slot(std::string_view name, MetricKind kind);
  [[nodiscard]] bool name_matches(const std::string& full,
                                  std::string_view name) const;

  std::string_view prefix_;
  Snapshot& out_;
  std::size_t* cursor_ = nullptr;
  const std::vector<std::uint32_t>* fold_map_ = nullptr;
  bool trusted_ = false;
  bool fallback_ = false;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // --- owned instruments (hot-path handles, stable addresses) ----------------
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  // --- pull sources -----------------------------------------------------------
  using SourceFn = std::function<void(MetricSink&)>;
  /// Register `fn` to emit metrics under `name.` at snapshot time. A name
  /// already registered is taken over (the previous owner's later
  /// unregister_source becomes a no-op). Contract: `fn` emits a fixed list
  /// of (name, kind) for the lifetime of the registration - values change,
  /// layout does not (snapshot_into's trusted reuse depends on it; emit a
  /// zero rather than skipping a metric conditionally).
  void register_source(std::string name, const void* owner, SourceFn fn);
  /// Remove `name` if - and only if - `owner` still owns it.
  void unregister_source(std::string_view name, const void* owner);
  [[nodiscard]] std::size_t num_sources() const { return sources_.size(); }

  /// Merge owned instruments and pulled sources, sorted by metric name.
  [[nodiscard]] Snapshot snapshot() const;

  /// Snapshot into a caller-owned buffer in *emission* order (not sorted),
  /// reusing it in place when the metric layout is unchanged since the
  /// buffer was last filled - the steady state allocates nothing and, when
  /// `layout_gen` still matches the registry's layout generation (bumped by
  /// every instrument creation and source (un)registration), skips the
  /// per-metric name verification entirely; both are what keep the
  /// sampler's per-tick cost inside the E27 overhead gate. `layout_gen` is
  /// updated to the current generation. Returns true when the whole buffer
  /// was reused in place (same names, kinds and order); false when it was
  /// (partially) rebuilt, telling the caller to recompute anything derived
  /// from the layout. Note the trusted fast path relies on the
  /// register_source() contract: a source callback emits a fixed list of
  /// (name, kind) for the lifetime of its registration.
  bool snapshot_into(Snapshot& out, std::uint64_t& layout_gen) const;

  /// Fold current instrument values directly into `target` through the
  /// merge plan `map` (emission index -> target slot, kNoFoldSlot skips):
  /// counters/gauges add into the slot's value, histograms merge buckets
  /// and running stats (quantiles are left for the caller to recompute
  /// from the merged buckets). This is the sampler's steady-state tick -
  /// it touches no names, writes no intermediate buffer and allocates
  /// nothing. Returns false *without folding anything* when `layout_gen`
  /// no longer matches; the caller must re-snapshot and re-plan.
  bool fold_into(Snapshot& target, const std::vector<std::uint32_t>& map,
                 std::uint64_t layout_gen) const;

  /// Execution mode: threaded serializes the instrument/source maps (handle
  /// get-or-create can race between real threads); the instruments
  /// themselves are relaxed atomics, so hot-path updates stay lock-free.
  /// Each host owns its registry; merged reads happen after workers join.
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

 private:
  struct Source {
    const void* owner = nullptr;
    SourceFn fn;
  };

  /// Serializes the maps below, never held during instrument updates.
  mutable sync::Mutex mu_;
  /// Bumped whenever the metric *layout* can change (instrument creation,
  /// source (un)registration); lets snapshot_into prove buffer reuse is
  /// safe without re-verifying names. Starts at 1 so a caller's zero-
  /// initialised cached generation never matches spuriously.
  std::uint64_t layout_gen_ = 1;
  // Ordered maps: iteration (and therefore snapshot order before the final
  // sort) is deterministic. unique_ptr keeps instrument addresses stable
  // across later insertions.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, Source, std::less<>> sources_;
};

// --- contention profiler bridges (sync/contention.h) ------------------------
// sync must not depend on obs, so rendering a lock's stats block into
// registry metrics lives here. Call from a registered source; metrics are
// emitted under "<lock>." and the source prefix applies on top ("sync"
// source + lock "reclaim_mu" -> "sync.reclaim_mu.acquisitions").

void emit_contention(MetricSink& sink, std::string_view lock,
                     const sync::ContentionStats& s);

/// Emits the lock's built-in acquired/contended pair plus the stats block.
void emit_range_lock(MetricSink& sink, std::string_view lock,
                     const sync::RangeLock& rl,
                     const sync::RangeContentionStats& s);

}  // namespace vialock::obs
