// export.h - the three exporters over the observability substrate
// (DESIGN.md section 10):
//
//   to_proc_text   - /proc/metrics: "name value" lines in name order, the
//                    text every other /proc node in this repo emits. A
//                    histogram renders as .count/.sum/.p50/.p99/.p999/.max
//                    lines.
//   to_json        - machine-readable snapshot, following bench::JsonReport's
//                    conventions (hand-rendered, escaped, byte-stable).
//   chrome_trace   - the finished spans of a SpanRecorder as a trace_event
//                    JSON document ({"traceEvents": [...]}) loadable in
//                    chrome://tracing or https://ui.perfetto.dev. Timestamps
//                    are virtual microseconds rendered by integer math (no
//                    float formatting), so exports are byte-identical across
//                    same-seed runs. Each X event carries the span's causal
//                    triple in args ("trace"/"span"/"parent", hex).
//
// The multi-recorder chrome_trace overload merges several hosts' recorders
// into one document (pid = recorder index) and stitches every trace that
// crosses recorders with flow events (ph "s"/"t"/"f", DESIGN.md section 11):
// the spans of one trace_id, ordered by virtual start time, become one
// connected arrow chain across endpoints.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace vialock::obs {

/// The seven scalar fields a histogram exports, in canonical order (count,
/// sum, p50, p95, p99, p999, max). Every exporter renders from this one
/// list, so a new quantile cannot silently diverge between them.
[[nodiscard]] std::array<std::pair<std::string_view, std::uint64_t>, 7>
histogram_fields(const Metric& m);

/// histogram_fields(m) as JSON object members: `, "count": c, ..., "max": x`
/// (leading comma included) - shared by to_json and the flight recorder.
void append_histogram_json(std::ostream& os, const Metric& m);

/// Virtual nanoseconds as decimal microseconds ("12.345"), integer math
/// only - the chrome-trace timestamp format.
[[nodiscard]] std::string trace_micros(Nanos ns);

[[nodiscard]] std::string to_proc_text(const Snapshot& snap);

[[nodiscard]] std::string to_json(const Snapshot& snap);

[[nodiscard]] std::string chrome_trace(const SpanRecorder& rec);

/// Merged export: one document over several recorders (pid = index into
/// `recs`), with flow events stitching traces that span multiple recorders.
[[nodiscard]] std::string chrome_trace(
    const std::vector<const SpanRecorder*>& recs);

/// Merged export with pre-rendered extra events (the sampler's counter-event
/// overlay) spliced into the traceEvents array. `extra_events` must be zero
/// or more complete event objects, each prefixed "\n  " and separated by
/// commas, with no leading or trailing comma (Sampler::chrome_counter_events
/// renders exactly that shape).
[[nodiscard]] std::string chrome_trace(
    const std::vector<const SpanRecorder*>& recs,
    std::string_view extra_events);

/// JSON string literal with the repo's escaping rules (", \, newline).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Lowercase 0x-prefixed hex (no leading zeros; "0x0" for zero).
[[nodiscard]] std::string json_hex(std::uint64_t v);

}  // namespace vialock::obs
