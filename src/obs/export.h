// export.h - the three exporters over the observability substrate
// (DESIGN.md section 10):
//
//   to_proc_text   - /proc/metrics: "name value" lines in name order, the
//                    text every other /proc node in this repo emits. A
//                    histogram renders as .count/.sum/.p50/.p99/.max lines.
//   to_json        - machine-readable snapshot, following bench::JsonReport's
//                    conventions (hand-rendered, escaped, byte-stable).
//   chrome_trace   - the finished spans of a SpanRecorder as a trace_event
//                    JSON document ({"traceEvents": [...]}) loadable in
//                    chrome://tracing or https://ui.perfetto.dev. Timestamps
//                    are virtual microseconds rendered by integer math (no
//                    float formatting), so exports are byte-identical across
//                    same-seed runs.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/span.h"

namespace vialock::obs {

[[nodiscard]] std::string to_proc_text(const Snapshot& snap);

[[nodiscard]] std::string to_json(const Snapshot& snap);

[[nodiscard]] std::string chrome_trace(const SpanRecorder& rec);

}  // namespace vialock::obs
