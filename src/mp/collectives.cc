#include "mp/collectives.h"

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/span.h"

namespace vialock::mp {

namespace {

/// Scoped instrumentation for one collective call: bumps the per-op counter
/// and records wall (virtual) time into the shared latency histogram on rank
/// 0's registry, opens a root span there, and pushes that span's context as
/// the ambient context on EVERY rank's recorder - so each rank's mp.isend /
/// mp.arrival spans, on whichever host they run, join one causal tree
/// (DESIGN.md section 11).
class CollectiveScope {
 public:
  CollectiveScope(Comm& comm, const char* op)
      : metrics_(comm.rank_kernel(0).metrics()),
        clock_(comm.rank_kernel(0).clock()),
        start_(clock_.now()),
        name_(std::string("mp.coll.") + op),
        span_(comm.rank_kernel(0).spans(), name_) {
    metrics_.counter(name_).inc();
    obs::SpanRecorder& root = comm.rank_kernel(0).spans();
    const obs::TraceContext ctx =
        span_.context().valid() ? span_.context() : root.active_context();
    for (Rank r = 0; r < comm.size(); ++r) {
      fan_out_.push_back(std::make_unique<obs::ScopedTraceContext>(
          comm.rank_kernel(r).spans(), ctx));
    }
  }
  ~CollectiveScope() {
    metrics_.histogram("mp.coll.op_ns").add(clock_.now() - start_);
  }
  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;

 private:
  obs::MetricRegistry& metrics_;
  Clock& clock_;
  Nanos start_;
  std::string name_;
  // span_ before fan_out_: the ambient contexts pop before the root closes.
  obs::ScopedSpan span_;
  std::vector<std::unique_ptr<obs::ScopedTraceContext>> fan_out_;
};

/// One matched exchange: irecv at `to`, isend at `from`, wait both.
[[nodiscard]] KStatus exchange(Comm& comm, Rank from, Rank to,
                               std::int32_t tag, std::uint64_t src_off,
                               std::uint64_t dst_off, std::uint32_t len) {
  const ReqId r = comm.irecv_internal(to, static_cast<std::int32_t>(from), tag,
                                      dst_off, len);
  const ReqId s = comm.isend_internal(from, to, tag, src_off, len);
  if (!comm.wait(r)) return KStatus::Proto;
  if (!comm.wait(s)) return KStatus::Proto;
  return KStatus::Ok;
}

}  // namespace

KStatus barrier(Comm& comm, std::uint64_t scratch_offset) {
  const CollectiveScope scope(comm, "barrier");
  const Rank n = comm.size();
  for (Rank k = 1; k < n; k <<= 1) {
    for (Rank r = 0; r < n; ++r) {
      const Rank to = (r + k) % n;
      if (const KStatus st = exchange(comm, r, to, kBarrierTag,
                                      scratch_offset, scratch_offset + 8, 8);
          !ok(st)) {
        return st;
      }
    }
  }
  return KStatus::Ok;
}

KStatus broadcast(Comm& comm, Rank root, std::uint64_t offset,
                  std::uint32_t len) {
  const CollectiveScope scope(comm, "broadcast");
  const Rank n = comm.size();
  for (Rank k = 1; k < n; k <<= 1) {
    for (Rank rel = 0; rel < k && rel + k < n; ++rel) {
      const Rank from = (root + rel) % n;
      const Rank to = (root + rel + k) % n;
      if (const KStatus st =
              exchange(comm, from, to, kBcastTag, offset, offset, len);
          !ok(st)) {
        return st;
      }
    }
  }
  return KStatus::Ok;
}

KStatus reduce_sum(Comm& comm, Rank root, std::uint64_t offset,
                   std::uint32_t count, std::uint64_t scratch_offset) {
  const CollectiveScope scope(comm, "reduce_sum");
  const Rank n = comm.size();
  const std::uint32_t bytes = count * 8;
  std::vector<std::uint64_t> acc(count);
  std::vector<std::uint64_t> incoming(count);

  // Reduce along a binomial tree rooted (virtually) at rank 0 in root-
  // relative coordinates: ascending round k folds rel r+k into rel r.
  auto abs_rank = [&](Rank rel) { return (root + rel) % n; };
  for (Rank k = 1; k < n; k <<= 1) {
    for (Rank rel = 0; rel + k < n; rel += 2 * k) {
      const Rank dst = abs_rank(rel);
      const Rank src = abs_rank(rel + k);
      if (const KStatus st = exchange(comm, src, dst, kReduceTag, offset,
                                      scratch_offset, bytes);
          !ok(st)) {
        return st;
      }
      // Fold at dst.
      if (const KStatus st = comm.fetch(
              dst, offset, std::as_writable_bytes(std::span{acc}));
          !ok(st)) {
        return st;
      }
      if (const KStatus st = comm.fetch(
              dst, scratch_offset, std::as_writable_bytes(std::span{incoming}));
          !ok(st)) {
        return st;
      }
      for (std::uint32_t i = 0; i < count; ++i) acc[i] += incoming[i];
      if (const KStatus st =
              comm.stage(dst, offset, std::as_bytes(std::span{acc}));
          !ok(st)) {
        return st;
      }
    }
  }
  return KStatus::Ok;
}

KStatus allreduce_sum(Comm& comm, std::uint64_t offset, std::uint32_t count,
                      std::uint64_t scratch_offset) {
  const CollectiveScope scope(comm, "allreduce_sum");
  if (const KStatus st = reduce_sum(comm, 0, offset, count, scratch_offset);
      !ok(st)) {
    return st;
  }
  return broadcast(comm, 0, offset, count * 8);
}

KStatus gather(Comm& comm, Rank root, std::uint64_t offset,
               std::uint32_t block) {
  const CollectiveScope scope(comm, "gather");
  const Rank n = comm.size();
  for (Rank r = 0; r < n; ++r) {
    if (r == root) continue;
    if (const KStatus st =
            exchange(comm, r, root, kGatherTag, offset,
                     offset + static_cast<std::uint64_t>(r) * block, block);
        !ok(st)) {
      return st;
    }
  }
  return KStatus::Ok;
}

}  // namespace vialock::mp
