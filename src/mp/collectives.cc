#include "mp/collectives.h"

#include <span>
#include <vector>

namespace vialock::mp {

namespace {

/// One matched exchange: irecv at `to`, isend at `from`, wait both.
[[nodiscard]] KStatus exchange(Comm& comm, Rank from, Rank to,
                               std::int32_t tag, std::uint64_t src_off,
                               std::uint64_t dst_off, std::uint32_t len) {
  const ReqId r = comm.irecv_internal(to, static_cast<std::int32_t>(from), tag,
                                      dst_off, len);
  const ReqId s = comm.isend_internal(from, to, tag, src_off, len);
  if (!comm.wait(r)) return KStatus::Proto;
  if (!comm.wait(s)) return KStatus::Proto;
  return KStatus::Ok;
}

}  // namespace

KStatus barrier(Comm& comm, std::uint64_t scratch_offset) {
  const Rank n = comm.size();
  for (Rank k = 1; k < n; k <<= 1) {
    for (Rank r = 0; r < n; ++r) {
      const Rank to = (r + k) % n;
      if (const KStatus st = exchange(comm, r, to, kBarrierTag,
                                      scratch_offset, scratch_offset + 8, 8);
          !ok(st)) {
        return st;
      }
    }
  }
  return KStatus::Ok;
}

KStatus broadcast(Comm& comm, Rank root, std::uint64_t offset,
                  std::uint32_t len) {
  const Rank n = comm.size();
  for (Rank k = 1; k < n; k <<= 1) {
    for (Rank rel = 0; rel < k && rel + k < n; ++rel) {
      const Rank from = (root + rel) % n;
      const Rank to = (root + rel + k) % n;
      if (const KStatus st =
              exchange(comm, from, to, kBcastTag, offset, offset, len);
          !ok(st)) {
        return st;
      }
    }
  }
  return KStatus::Ok;
}

KStatus reduce_sum(Comm& comm, Rank root, std::uint64_t offset,
                   std::uint32_t count, std::uint64_t scratch_offset) {
  const Rank n = comm.size();
  const std::uint32_t bytes = count * 8;
  std::vector<std::uint64_t> acc(count);
  std::vector<std::uint64_t> incoming(count);

  // Reduce along a binomial tree rooted (virtually) at rank 0 in root-
  // relative coordinates: ascending round k folds rel r+k into rel r.
  auto abs_rank = [&](Rank rel) { return (root + rel) % n; };
  for (Rank k = 1; k < n; k <<= 1) {
    for (Rank rel = 0; rel + k < n; rel += 2 * k) {
      const Rank dst = abs_rank(rel);
      const Rank src = abs_rank(rel + k);
      if (const KStatus st = exchange(comm, src, dst, kReduceTag, offset,
                                      scratch_offset, bytes);
          !ok(st)) {
        return st;
      }
      // Fold at dst.
      if (const KStatus st = comm.fetch(
              dst, offset, std::as_writable_bytes(std::span{acc}));
          !ok(st)) {
        return st;
      }
      if (const KStatus st = comm.fetch(
              dst, scratch_offset, std::as_writable_bytes(std::span{incoming}));
          !ok(st)) {
        return st;
      }
      for (std::uint32_t i = 0; i < count; ++i) acc[i] += incoming[i];
      if (const KStatus st =
              comm.stage(dst, offset, std::as_bytes(std::span{acc}));
          !ok(st)) {
        return st;
      }
    }
  }
  return KStatus::Ok;
}

KStatus allreduce_sum(Comm& comm, std::uint64_t offset, std::uint32_t count,
                      std::uint64_t scratch_offset) {
  if (const KStatus st = reduce_sum(comm, 0, offset, count, scratch_offset);
      !ok(st)) {
    return st;
  }
  return broadcast(comm, 0, offset, count * 8);
}

KStatus gather(Comm& comm, Rank root, std::uint64_t offset,
               std::uint32_t block) {
  const Rank n = comm.size();
  for (Rank r = 0; r < n; ++r) {
    if (r == root) continue;
    if (const KStatus st =
            exchange(comm, r, root, kGatherTag, offset,
                     offset + static_cast<std::uint64_t>(r) * block, block);
        !ok(st)) {
      return st;
    }
  }
  return KStatus::Ok;
}

}  // namespace vialock::mp
