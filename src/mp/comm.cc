#include "mp/comm.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/span.h"

namespace vialock::mp {

using simkern::kPageSize;
using simkern::Pid;
using simkern::VAddr;
using via::Descriptor;

namespace {

template <typename T>
std::span<const std::byte> bytes_of(const T& v) {
  return std::as_bytes(std::span{&v, 1});
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

struct Comm::Pending {
  enum class Kind { Send, Recv } kind = Kind::Send;
  Rank rank = 0;  ///< owning rank
  bool complete = false;
  bool failed = false;
  MpStatus status;

  // Send bookkeeping (rendezvous only):
  via::MemHandle src_handle;
  bool src_registered = false;

  // Receive bookkeeping:
  std::int32_t want_source = kAnySource;
  std::int32_t want_tag = kAnyTag;
  std::uint64_t offset = 0;
  std::uint32_t max_len = 0;
};

struct Comm::Side {
  Side(via::Node& node, Pid pid_in) : pid(pid_in), vipl(node.agent(), pid_in) {}

  Pid pid;
  via::Vipl vipl;
  std::unique_ptr<core::RegistrationCache> cache;
  VAddr heap = 0;

  struct Link {
    // Remote (VIA) path:
    via::ViId vi = via::kInvalidVi;
    VAddr slots = 0;  ///< credits recv slots + 1 send staging slot
    via::MemHandle slots_mh;
    // Local (shared-memory) path:
    bool local = false;
    simkern::ShmId shm = simkern::kInvalidShm;
    VAddr shm_base = 0;           ///< this rank's mapping of the segment
    std::uint32_t send_dir = 0;   ///< segment half this rank sends on
    std::uint32_t next_slot = 0;  ///< round-robin send slot cursor
  };
  std::vector<Link> links;  ///< indexed by peer rank (self unused)

  // Unexpected-message arena: plain process memory, slot-granular.
  VAddr sys_scratch = 0;  ///< staging for system (routed) messages
  VAddr arena = 0;
  std::vector<bool> arena_used;
  std::deque<UnexpectedMsg> unexpected;  ///< arrival order
  std::deque<ReqId> posted;              ///< post order
  std::uint64_t arena_overflows = 0;

  [[nodiscard]] std::uint32_t alloc_arena_slot() {
    for (std::uint32_t i = 0; i < arena_used.size(); ++i) {
      if (!arena_used[i]) {
        arena_used[i] = true;
        return i;
      }
    }
    return static_cast<std::uint32_t>(-1);
  }
  void free_arena_slot(std::uint32_t i) { arena_used[i] = false; }
};

// ---------------------------------------------------------------------------
// Construction / init
// ---------------------------------------------------------------------------

Comm::Comm(via::Cluster& cluster, std::vector<via::NodeId> nodes, Config config)
    : cluster_(cluster), nodes_(std::move(nodes)), config_(config) {}

Comm::~Comm() {
  // Owner-checked: a later Comm that took the name over keeps it.
  if (!nodes_.empty()) {
    cluster_.node(nodes_[0]).kernel().metrics().unregister_source("mp", this);
  }
}

simkern::Pid Comm::rank_pid(Rank r) const { return sides_[r]->pid; }

KStatus Comm::init() {
  assert(!initialised_);
  if (nodes_.size() < 2) return KStatus::Inval;
  if (config_.lazy_links && !config_.no_direct_link.empty())
    return KStatus::Inval;  // lazy pairs are always direct; nothing to route
  const auto prot = simkern::VmFlag::Read | simkern::VmFlag::Write;
  const std::uint32_t slot = config_.eager_slot_size;

  for (Rank r = 0; r < size(); ++r) {
    via::Node& node = cluster_.node(nodes_[r]);
    const Pid pid = node.kernel().create_task("mp-rank" + std::to_string(r));
    auto side = std::make_unique<Side>(node, pid);
    if (const KStatus st = side->vipl.open(); !ok(st)) return st;
    const auto heap = node.kernel().sys_mmap_anon(pid, config_.heap_bytes, prot);
    if (!heap) return KStatus::NoMem;
    side->heap = *heap;
    const auto arena = node.kernel().sys_mmap_anon(
        pid, static_cast<std::uint64_t>(slot) * config_.unexpected_slots, prot);
    if (!arena) return KStatus::NoMem;
    side->arena = *arena;
    side->arena_used.assign(config_.unexpected_slots, false);
    const auto scratch = node.kernel().sys_mmap_anon(pid, slot, prot);
    if (!scratch) return KStatus::NoMem;
    side->sys_scratch = *scratch;
    side->cache = std::make_unique<core::RegistrationCache>(
        side->vipl, core::RegistrationCache::Config{
                        .policy = config_.cache_policy, .max_idle = 1024});
    side->links.resize(nodes_.size());
    sides_.push_back(std::move(side));
  }

  // One link per unordered rank pair: a shared-memory segment when both
  // ranks live on the same node (the multidevice "Connectiontable" routing),
  // otherwise a VI pair over the fabric. Lazy mode defers each pair to its
  // first send - a 256-rank communicator would otherwise pin bounce slots
  // for 32k pairs that mostly never talk.
  if (!config_.lazy_links) {
    const auto blocked = [&](Rank a, Rank b) {
      for (const auto& [x, y] : config_.no_direct_link) {
        if ((x == a && y == b) || (x == b && y == a)) return true;
      }
      return false;
    };
    for (Rank i = 0; i < size(); ++i) {
      for (Rank j = i + 1; j < size(); ++j) {
        if (blocked(i, j)) continue;  // no link: traffic will be routed
        if (const KStatus st = ensure_link(i, j); !ok(st)) return st;
      }
    }
  }
  // Routing table for link-less pairs: BFS over the link graph per source
  // (the job the multidevice paper's mdconfig tool does with Dijkstra).
  next_hop_.assign(size(), std::vector<Rank>(size(), kNoRoute));
  for (Rank src = 0; src < size(); ++src) {
    std::deque<Rank> frontier{src};
    std::vector<Rank> parent(size(), kNoRoute);
    parent[src] = src;
    while (!frontier.empty()) {
      const Rank at = frontier.front();
      frontier.pop_front();
      for (Rank nb = 0; nb < size(); ++nb) {
        if (nb == at || parent[nb] != kNoRoute) continue;
        if (!has_direct_link(at, nb)) continue;
        parent[nb] = at;
        frontier.push_back(nb);
      }
    }
    for (Rank dst = 0; dst < size(); ++dst) {
      if (dst == src || parent[dst] == kNoRoute) continue;
      Rank step = dst;
      while (parent[step] != src) step = parent[step];
      next_hop_[src][dst] = step;
    }
  }
  // Publish the communicator through rank 0's host registry: the CommStats
  // counters plus the summed per-rank unexpected-arena overflows. Subsystem
  // "mp" (first dot-segment) joins the exported set.
  cluster_.node(nodes_[0]).kernel().metrics().register_source(
      "mp", this, [this](obs::MetricSink& sink) {
        sink.counter("comm.eager_sends", stats_.eager_sends);
        sink.counter("comm.rendezvous_sends", stats_.rendezvous_sends);
        sink.counter("comm.unexpected_msgs", stats_.unexpected_msgs);
        sink.counter("comm.expected_msgs", stats_.expected_msgs);
        sink.counter("comm.rdma_pulls", stats_.rdma_pulls);
        sink.counter("comm.local_msgs", stats_.local_msgs);
        sink.counter("comm.local_pulls", stats_.local_pulls);
        sink.counter("comm.indirect_sends", stats_.indirect_sends);
        sink.counter("comm.indirect_forwards", stats_.indirect_forwards);
        sink.counter("comm.bytes", stats_.bytes);
        std::uint64_t overflows = 0;
        for (const auto& side : sides_) overflows += side->arena_overflows;
        sink.counter("comm.arena_overflows", overflows);
      });
  initialised_ = true;
  return KStatus::Ok;
}

KStatus Comm::ensure_link(Rank i, Rank j) {
  if (i > j) std::swap(i, j);  // local_queues_ and shm halves key on (lo, hi)
  if (has_direct_link(i, j)) return KStatus::Ok;
  const auto prot = simkern::VmFlag::Read | simkern::VmFlag::Write;
  const std::uint32_t slot = config_.eager_slot_size;
  const std::uint64_t link_bytes =
      static_cast<std::uint64_t>(slot) * (config_.eager_credits + 1);

  if (config_.shm_for_local && nodes_[i] == nodes_[j]) {
    simkern::Kernel& kern = cluster_.node(nodes_[i]).kernel();
    const std::uint64_t seg_bytes =
        2ULL * config_.eager_credits * slot + config_.local_bounce_bytes;
    const simkern::ShmId seg = kern.shm_create(seg_bytes);
    if (seg == simkern::kInvalidShm) return KStatus::NoMem;
    for (const Rank r : {i, j}) {
      Side& s = *sides_[r];
      const Rank peer = r == i ? j : i;
      const auto base = kern.shm_attach(s.pid, seg);
      if (!base) return KStatus::NoMem;
      Side::Link& link = s.links[peer];
      link.local = true;
      link.shm = seg;
      link.shm_base = *base;
      link.send_dir = r < peer ? 0 : 1;
    }
    local_queues_.emplace(
        std::make_pair(i, j),
        std::make_unique<std::array<std::deque<std::uint32_t>, 2>>());
    return KStatus::Ok;
  }
  for (const Rank r : {i, j}) {
    Side& s = *sides_[r];
    const Rank peer = r == i ? j : i;
    via::Node& node = cluster_.node(nodes_[r]);
    const auto slots = node.kernel().sys_mmap_anon(s.pid, link_bytes, prot);
    if (!slots) return KStatus::NoMem;
    Side::Link& link = s.links[peer];
    link.slots = *slots;
    if (const KStatus st =
            s.vipl.register_mem(link.slots, link_bytes, link.slots_mh);
        !ok(st)) {
      return st;
    }
    if (const KStatus st = s.vipl.create_vi(link.vi); !ok(st)) return st;
  }
  if (const KStatus st =
          cluster_.fabric().connect(nodes_[i], sides_[i]->links[j].vi,
                                    nodes_[j], sides_[j]->links[i].vi);
      !ok(st)) {
    return st;
  }
  // Pre-post the receive credits on both ends - one gather-list doorbell
  // arms the whole credit ring per side.
  for (const Rank r : {i, j}) {
    Side& s = *sides_[r];
    const Rank peer = r == i ? j : i;
    Side::Link& link = s.links[peer];
    std::vector<via::Vipl::RecvPost> posts;
    posts.reserve(config_.eager_credits);
    for (std::uint32_t c = 0; c < config_.eager_credits; ++c) {
      posts.push_back({link.slots_mh,
                       link.slots + static_cast<std::uint64_t>(c) * slot, slot,
                       /*cookie=*/c});
    }
    if (const KStatus st = s.vipl.post_recv_batch(link.vi, posts); !ok(st)) {
      return st;
    }
  }
  return KStatus::Ok;
}

bool Comm::has_direct_link(Rank a, Rank b) const {
  const auto& link = sides_[a]->links[b];
  return link.local || link.vi != via::kInvalidVi;
}

Rank Comm::route_next(Rank from, Rank to) const {
  if (from == to) return to;
  if (has_direct_link(from, to)) return to;
  return next_hop_[from][to];
}

KStatus Comm::stage(Rank rank, std::uint64_t offset,
                    std::span<const std::byte> data) {
  Side& s = *sides_[rank];
  return cluster_.node(nodes_[rank]).kernel().write_user(s.pid,
                                                         s.heap + offset, data);
}

KStatus Comm::fetch(Rank rank, std::uint64_t offset, std::span<std::byte> out) {
  Side& s = *sides_[rank];
  return cluster_.node(nodes_[rank]).kernel().read_user(s.pid, s.heap + offset,
                                                        out);
}

// ---------------------------------------------------------------------------
// Wire: one eager-slot message from `from` to `to`
// ---------------------------------------------------------------------------

bool Comm::uses_shm(Rank a, Rank b) const {
  return sides_[a]->links[b].local;
}

KStatus Comm::push_wire(Rank from, Rank to, const WireHeader& header,
                        std::uint64_t payload_offset) {
  const std::uint32_t payload =
      header.kind == MsgKind::Eager ? header.len : 0;
  return push_raw(from, to, header, sides_[from]->heap + payload_offset,
                  payload);
}

KStatus Comm::push_raw(Rank from, Rank to, const WireHeader& header,
                       VAddr src_addr, std::uint32_t payload) {
  Side& s = *sides_[from];
  Side::Link& link = s.links[to];
  simkern::Kernel& kern = cluster_.node(nodes_[from]).kernel();
  const std::uint32_t slot = config_.eager_slot_size;
  assert(sizeof(WireHeader) + payload <= slot);

  if (link.local) {
    // Shared-memory link: copy header + payload into the next send slot of
    // our direction half and flag it; no NIC, no wire.
    auto& queue =
        (*local_queues_.at(std::minmax(from, to)))[link.send_dir];
    assert(queue.size() < config_.eager_credits && "local link overrun");
    const std::uint32_t idx = link.next_slot;
    link.next_slot = (link.next_slot + 1) % config_.eager_credits;
    const VAddr slot_addr =
        link.shm_base +
        (static_cast<std::uint64_t>(link.send_dir) * config_.eager_credits +
         idx) *
            slot;
    if (const KStatus st = kern.write_user(s.pid, slot_addr, bytes_of(header));
        !ok(st)) {
      return st;
    }
    if (payload > 0) {
      if (const KStatus st = kern.copy_user(
              s.pid, slot_addr + sizeof(WireHeader), src_addr, payload);
          !ok(st)) {
        return st;
      }
    }
    kern.clock().advance(kern.costs().mem_touch);  // the flag store
    queue.push_back(idx);
    return KStatus::Ok;
  }

  const VAddr staging =
      link.slots + static_cast<std::uint64_t>(config_.eager_credits) * slot;
  if (const KStatus st = kern.write_user(s.pid, staging, bytes_of(header));
      !ok(st)) {
    return st;
  }
  if (payload > 0) {
    if (const KStatus st = kern.copy_user(
            s.pid, staging + sizeof(WireHeader), src_addr, payload);
        !ok(st)) {
      return st;
    }
  }
  if (const KStatus st = s.vipl.post_send(
          link.vi, link.slots_mh, staging,
          static_cast<std::uint32_t>(sizeof(WireHeader)) + payload);
      !ok(st)) {
    return st;
  }
  const auto sc = s.vipl.send_done(link.vi);
  if (!sc || !sc->done_ok()) return KStatus::Proto;
  return KStatus::Ok;
}

// ---------------------------------------------------------------------------
// Matching engine
// ---------------------------------------------------------------------------

bool Comm::header_matches(const WireHeader& h, std::int32_t source,
                          std::int32_t tag) const {
  if (source != kAnySource && static_cast<Rank>(source) != h.src_rank)
    return false;
  if (tag != kAnyTag && tag != h.tag) return false;
  return true;
}

KStatus Comm::deliver_eager(Rank rank, const UnexpectedMsg& msg,
                            Pending& recv) {
  Side& s = *sides_[rank];
  simkern::Kernel& kern = cluster_.node(nodes_[rank]).kernel();
  recv.status = MpStatus{msg.header.src_rank, msg.header.tag, msg.header.len};
  if (msg.header.len > recv.max_len) {
    recv.failed = true;
    recv.complete = true;
    return KStatus::Inval;  // MPI_ERR_TRUNCATE
  }
  if (msg.header.len > 0) {
    const VAddr src = s.arena + static_cast<std::uint64_t>(msg.arena_slot) *
                                    config_.eager_slot_size;
    if (const KStatus st =
            kern.copy_user(s.pid, s.heap + recv.offset, src, msg.header.len);
        !ok(st)) {
      recv.failed = true;
      recv.complete = true;
      return st;
    }
  }
  recv.complete = true;
  stats_.bytes += msg.header.len;
  return KStatus::Ok;
}

KStatus Comm::deliver_rendezvous(Rank rank, const WireHeader& req,
                                 Pending& recv) {
  Side& s = *sides_[rank];
  recv.status = MpStatus{req.src_rank, req.tag, req.len};
  if (req.len > recv.max_len) {
    recv.failed = true;
    recv.complete = true;
    return KStatus::Inval;
  }
  // Register the destination buffer and PULL the payload with RDMA read -
  // true zero-copy, no intermediate buffer on either side.
  via::MemHandle dst;
  if (const KStatus st =
          s.cache->acquire(s.heap + recv.offset, req.len, dst);
      !ok(st)) {
    recv.failed = true;
    recv.complete = true;
    return st;
  }
  Side::Link& link = s.links[req.src_rank];
  if (const KStatus st =
          s.vipl.rdma_read(link.vi, dst, s.heap + recv.offset, req.len,
                           req.handle, req.addr);
      !ok(st)) {
    s.cache->release(dst);
    recv.failed = true;
    recv.complete = true;
    return st;
  }
  const auto sc = s.vipl.send_done(link.vi);
  s.cache->release(dst);
  if (!sc || !sc->done_ok()) {
    recv.failed = true;
    recv.complete = true;
    return KStatus::Proto;
  }
  ++stats_.rdma_pulls;
  stats_.bytes += req.len;
  recv.complete = true;
  // FIN tells the sender its buffer is free (and completes its request).
  WireHeader fin;
  fin.kind = MsgKind::RndzFin;
  fin.src_rank = rank;
  fin.sender_req = req.sender_req;
  fin.trace_id = req.trace_id;  // the FIN closes out the sender's trace
  fin.span_id = req.span_id;
  return push_wire(rank, req.src_rank, fin, 0);
}

bool Comm::handle_system(Rank rank, const WireHeader& header,
                         VAddr slot_addr) {
  if (header.tag != kSysFwdTag && header.tag != kSysAckTag) return false;
  Side& s = *sides_[rank];
  simkern::Kernel& kern = cluster_.node(nodes_[rank]).kernel();
  SysEnvelope env;
  if (!ok(kern.read_user(s.pid, slot_addr + sizeof(WireHeader),
                         std::as_writable_bytes(std::span{&env, 1})))) {
    return true;
  }

  if (header.tag == kSysAckTag) {
    if (env.final_dest == rank) {
      // End of the acknowledgement chain: the original send is complete.
      auto it = requests_.find(env.sender_req);
      if (it != requests_.end()) it->second->complete = true;
    } else {
      const Rank hop = route_next(rank, env.final_dest);
      if (hop != kNoRoute) {
        WireHeader fh = header;
        fh.src_rank = rank;
        (void)push_raw(rank, hop, fh, slot_addr + sizeof(WireHeader),
                       header.len);
        ++stats_.indirect_forwards;
      }
    }
    return true;
  }

  // kSysFwdTag: a routed user message.
  if (env.final_dest == rank) {
    // "The receive happens implicitly": synthesize the arrival and run the
    // normal matching engine on the inner message.
    WireHeader synth;
    synth.kind = MsgKind::Eager;
    synth.tag = env.orig_tag;
    synth.src_rank = env.orig_src;
    synth.len = env.len;
    synth.trace_id = header.trace_id;  // the hops preserved the origin's ctx
    synth.span_id = header.span_id;
    process_arrival(rank, synth, slot_addr + sizeof(SysEnvelope));
    // Acknowledge back to the origin (routed if need be).
    SysEnvelope ack = env;
    ack.final_dest = env.orig_src;
    ack.orig_src = rank;
    WireHeader ah;
    ah.kind = MsgKind::Eager;
    ah.tag = kSysAckTag;
    ah.src_rank = rank;
    ah.len = sizeof(SysEnvelope);
    ah.trace_id = header.trace_id;  // the ACK chain stays in the trace
    ah.span_id = header.span_id;
    (void)kern.write_user(s.pid, s.sys_scratch, bytes_of(ack));
    const Rank hop = route_next(rank, ack.final_dest);
    if (hop != kNoRoute) {
      (void)push_raw(rank, hop, ah, s.sys_scratch, sizeof(SysEnvelope));
    }
  } else {
    // Intermediate node: "copies the data into a buffer and resends".
    const Rank hop = route_next(rank, env.final_dest);
    if (hop != kNoRoute) {
      WireHeader fh = header;
      fh.src_rank = rank;
      (void)push_raw(rank, hop, fh, slot_addr + sizeof(WireHeader),
                     header.len);
      ++stats_.indirect_forwards;
    }
  }
  return true;
}

void Comm::process_arrival(Rank rank, const WireHeader& header,
                           VAddr slot_addr) {
  if (handle_system(rank, header, slot_addr)) return;
  Side& s = *sides_[rank];
  simkern::Kernel& kern = cluster_.node(nodes_[rank]).kernel();

  // Adopt the in-band context: the matching engine's work for this arrival
  // (landing-slot copies, the RDMA pull, the FIN) nests under the sender's
  // mp.isend span even though it runs on a different host's recorder.
  const obs::ScopedTraceContext arrival_ctx(
      kern.spans(), obs::TraceContext{header.trace_id, header.span_id, 0});
  const obs::ScopedSpan arrival_span(kern.spans(), "mp.arrival");

  switch (header.kind) {
    case MsgKind::RndzFin: {
      auto it = requests_.find(header.sender_req);
      if (it != requests_.end()) {
        Pending& send = *it->second;
        if (send.src_registered) {
          sides_[send.rank]->cache->release(send.src_handle);
          send.src_registered = false;
        }
        send.complete = true;
      }
      break;
    }
    case MsgKind::Eager:
    case MsgKind::RndzReq: {
      // Try the posted-receive queue in post order.
      Pending* match = nullptr;
      for (auto it = s.posted.begin(); it != s.posted.end(); ++it) {
        Pending& cand = *requests_.at(*it);
        if (header_matches(header, cand.want_source, cand.want_tag)) {
          match = &cand;
          s.posted.erase(it);
          break;
        }
      }
      if (header.kind == MsgKind::Eager) {
        if (match) {
          // Copy straight from the landing slot into the user buffer.
          ++stats_.expected_msgs;
          if (header.len > 0 && header.len <= match->max_len) {
            (void)kern.copy_user(s.pid, s.heap + match->offset,
                                 slot_addr + sizeof(WireHeader), header.len);
          }
          match->status = MpStatus{header.src_rank, header.tag, header.len};
          match->failed = header.len > match->max_len;
          match->complete = true;
          if (!match->failed) stats_.bytes += header.len;
        } else {
          // Park in the unexpected arena.
          const std::uint32_t arena_slot = s.alloc_arena_slot();
          if (arena_slot == static_cast<std::uint32_t>(-1)) {
            ++s.arena_overflows;
          } else {
            if (header.len > 0) {
              (void)kern.copy_user(
                  s.pid,
                  s.arena + static_cast<std::uint64_t>(arena_slot) *
                                config_.eager_slot_size,
                  slot_addr + sizeof(WireHeader), header.len);
            }
            s.unexpected.push_back(UnexpectedMsg{header, arena_slot});
            ++stats_.unexpected_msgs;
          }
        }
      } else {  // RndzReq
        if (match) {
          ++stats_.expected_msgs;
          if (s.links[header.src_rank].local) {
            (void)deliver_local_pull(rank, header, *match);
          } else {
            (void)deliver_rendezvous(rank, header, *match);
          }
        } else {
          s.unexpected.push_back(UnexpectedMsg{header, 0});
          ++stats_.unexpected_msgs;
        }
      }
      break;
    }
  }
}

bool Comm::drain(Rank rank) {
  bool activity = false;
  Side& s = *sides_[rank];
  simkern::Kernel& kern = cluster_.node(nodes_[rank]).kernel();
  for (Rank peer = 0; peer < size(); ++peer) {
    if (peer == rank) continue;
    Side::Link& link = s.links[peer];

    if (link.local) {
      // Poll the shared-memory flags of the incoming direction.
      const std::uint32_t recv_dir = 1 - link.send_dir;
      auto& queue = (*local_queues_.at(std::minmax(rank, peer)))[recv_dir];
      while (!queue.empty()) {
        const std::uint32_t idx = queue.front();
        queue.pop_front();
        const VAddr slot_addr =
            link.shm_base +
            (static_cast<std::uint64_t>(recv_dir) * config_.eager_credits +
             idx) *
                config_.eager_slot_size;
        kern.clock().advance(kern.costs().mem_touch);  // the flag load
        WireHeader header;
        if (!ok(kern.read_user(
                s.pid, slot_addr,
                std::as_writable_bytes(std::span{&header, 1})))) {
          continue;
        }
        ++stats_.local_msgs;
        activity = true;
        process_arrival(rank, header, slot_addr);
      }
      continue;
    }

    if (link.vi == via::kInvalidVi) continue;
    for (;;) {
      const auto rc = s.vipl.recv_done(link.vi);
      if (!rc) break;
      if (!rc->done_ok()) continue;  // connection error: drop
      const auto slot_idx = static_cast<std::uint32_t>(rc->cookie);
      const VAddr slot_addr =
          link.slots +
          static_cast<std::uint64_t>(slot_idx) * config_.eager_slot_size;
      WireHeader header;
      if (!ok(kern.read_user(s.pid, slot_addr,
                             std::as_writable_bytes(std::span{&header, 1})))) {
        continue;
      }
      activity = true;
      process_arrival(rank, header, slot_addr);
      // Re-arm the consumed slot.
      (void)s.vipl.post_recv(link.vi, link.slots_mh, slot_addr,
                             config_.eager_slot_size, slot_idx);
    }
  }
  return activity;
}

KStatus Comm::deliver_local_pull(Rank rank, const WireHeader& req,
                                 Pending& recv) {
  // Large local message: pipeline the payload through the link's shm bounce
  // region (two copies per chunk - the classic shared-memory long protocol).
  Side& rcv = *sides_[rank];
  Side& snd = *sides_[req.src_rank];
  simkern::Kernel& kern = cluster_.node(nodes_[rank]).kernel();
  recv.status = MpStatus{req.src_rank, req.tag, req.len};
  if (req.len > recv.max_len) {
    recv.failed = true;
    recv.complete = true;
    return KStatus::Inval;
  }
  const std::uint64_t bounce_off =
      2ULL * config_.eager_credits * config_.eager_slot_size;
  const VAddr snd_bounce = snd.links[rank].shm_base + bounce_off;
  const VAddr rcv_bounce = rcv.links[req.src_rank].shm_base + bounce_off;
  // req.addr carries the sender's *heap offset* on local links.
  std::uint64_t done = 0;
  while (done < req.len) {
    const auto chunk = std::min<std::uint64_t>(config_.local_bounce_bytes,
                                               req.len - done);
    if (const KStatus st = kern.copy_user(snd.pid, snd_bounce,
                                          snd.heap + req.addr + done, chunk);
        !ok(st)) {
      recv.failed = true;
      recv.complete = true;
      return st;
    }
    if (const KStatus st = kern.copy_user(
            rcv.pid, rcv.heap + recv.offset + done, rcv_bounce, chunk);
        !ok(st)) {
      recv.failed = true;
      recv.complete = true;
      return st;
    }
    kern.clock().advance(2 * kern.costs().mem_touch);  // per-chunk handshake
    done += chunk;
  }
  ++stats_.local_pulls;
  stats_.bytes += req.len;
  recv.complete = true;
  WireHeader fin;
  fin.kind = MsgKind::RndzFin;
  fin.src_rank = rank;
  fin.sender_req = req.sender_req;
  fin.trace_id = req.trace_id;
  fin.span_id = req.span_id;
  return push_wire(rank, req.src_rank, fin, 0);
}

void Comm::progress() {
  // Routed (multi-hop) messages generate new traffic while draining, so
  // sweep until the whole system is quiescent (bounded defensively).
  bool again = true;
  for (int sweep = 0; again && sweep < 64; ++sweep) {
    again = false;
    for (Rank r = 0; r < size(); ++r) again |= drain(r);
  }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

ReqId Comm::isend(Rank rank, Rank dest, std::int32_t tag, std::uint64_t offset,
                  std::uint32_t len) {
  if (tag < 0) return kInvalidReq;  // negative tags are reserved
  return isend_internal(rank, dest, tag, offset, len);
}

ReqId Comm::isend_indirect(Rank rank, Rank dest, std::int32_t tag,
                           std::uint64_t offset, std::uint32_t len) {
  auto req = std::make_unique<Pending>();
  req->kind = Pending::Kind::Send;
  req->rank = rank;
  const ReqId id = next_req_++;
  Side& s = *sides_[rank];
  simkern::Kernel& kern = cluster_.node(nodes_[rank]).kernel();

  const std::uint32_t capacity =
      config_.eager_slot_size -
      static_cast<std::uint32_t>(sizeof(WireHeader) + sizeof(SysEnvelope));
  const Rank hop = route_next(rank, dest);
  if (len > capacity || hop == kNoRoute) {
    req->failed = true;
    req->complete = true;
    requests_.emplace(id, std::move(req));
    return id;
  }

  // Wrap the user message in a system envelope and hand it to the first
  // hop; the request completes when the end-to-end ACK returns.
  const SysEnvelope env{dest, rank, tag, len, id};
  if (!ok(kern.write_user(s.pid, s.sys_scratch, bytes_of(env))) ||
      (len > 0 &&
       !ok(kern.copy_user(s.pid, s.sys_scratch + sizeof(SysEnvelope),
                          s.heap + offset, len)))) {
    req->failed = true;
    req->complete = true;
    requests_.emplace(id, std::move(req));
    return id;
  }
  obs::SpanRecorder& spans = kern.spans();
  const obs::ScopedSpan send_span(spans, "mp.isend.indirect");
  const obs::TraceContext send_ctx = send_span.context().valid()
                                         ? send_span.context()
                                         : spans.active_context();
  WireHeader h;
  h.kind = MsgKind::Eager;
  h.tag = kSysFwdTag;
  h.src_rank = rank;
  h.len = static_cast<std::uint32_t>(sizeof(SysEnvelope)) + len;
  h.trace_id = send_ctx.trace_id;
  h.span_id = send_ctx.span_id;
  if (!ok(push_raw(rank, hop, h, s.sys_scratch, h.len))) {
    req->failed = true;
    req->complete = true;
  }
  ++stats_.indirect_sends;
  requests_.emplace(id, std::move(req));
  progress();
  return id;
}

ReqId Comm::isend_internal(Rank rank, Rank dest, std::int32_t tag,
                           std::uint64_t offset, std::uint32_t len) {
  assert(initialised_ && rank < size() && dest < size() && rank != dest);
  if (config_.lazy_links && !has_direct_link(rank, dest) &&
      !ok(ensure_link(rank, dest))) {
    return kInvalidReq;
  }
  if (!has_direct_link(rank, dest)) {
    return isend_indirect(rank, dest, tag, offset, len);
  }
  auto req = std::make_unique<Pending>();
  req->kind = Pending::Kind::Send;
  req->rank = rank;
  const ReqId id = next_req_++;

  // One span per send on the sending rank's host; its context rides in the
  // header so the receiving rank's arrival spans join the same trace. Under
  // a collective the ambient context makes this a child of the collective.
  obs::SpanRecorder& spans = cluster_.node(nodes_[rank]).kernel().spans();
  const obs::ScopedSpan send_span(spans, "mp.isend");
  const obs::TraceContext send_ctx = send_span.context().valid()
                                         ? send_span.context()
                                         : spans.active_context();

  WireHeader header;
  header.tag = tag;
  header.src_rank = rank;
  header.len = len;
  header.trace_id = send_ctx.trace_id;
  header.span_id = send_ctx.span_id;

  const std::uint32_t eager_capacity =
      config_.eager_slot_size - static_cast<std::uint32_t>(sizeof(WireHeader));
  if (len <= config_.eager_threshold && len <= eager_capacity) {
    header.kind = MsgKind::Eager;
    if (!ok(push_wire(rank, dest, header, offset))) {
      req->failed = true;
    }
    req->complete = true;  // buffered: the user buffer is free again
    ++stats_.eager_sends;  // bytes are counted at delivery
  } else if (sides_[rank]->links[dest].local) {
    // Local long protocol: no registration needed - the payload will be
    // pipelined through the shared segment when the receive matches. The
    // header advertises the sender's heap offset.
    header.kind = MsgKind::RndzReq;
    header.sender_req = id;
    header.addr = offset;
    if (!ok(push_wire(rank, dest, header, 0))) {
      req->failed = true;
      req->complete = true;
    }
    ++stats_.rendezvous_sends;
  } else {
    // Rendezvous: register the source buffer, advertise it, await the FIN.
    Side& s = *sides_[rank];
    if (!ok(s.cache->acquire(s.heap + offset, len, req->src_handle))) {
      req->failed = true;
      req->complete = true;
    } else {
      req->src_registered = true;
      header.kind = MsgKind::RndzReq;
      header.sender_req = id;
      header.handle = req->src_handle;
      header.addr = s.heap + offset;
      if (!ok(push_wire(rank, dest, header, 0))) {
        s.cache->release(req->src_handle);
        req->src_registered = false;
        req->failed = true;
        req->complete = true;
      }
      ++stats_.rendezvous_sends;
    }
  }
  requests_.emplace(id, std::move(req));
  progress();
  return id;
}

ReqId Comm::irecv(Rank rank, std::int32_t source, std::int32_t tag,
                  std::uint64_t offset, std::uint32_t max_len) {
  if (tag < 0 && tag != kAnyTag) return kInvalidReq;
  return irecv_internal(rank, source, tag, offset, max_len);
}

ReqId Comm::irecv_internal(Rank rank, std::int32_t source, std::int32_t tag,
                           std::uint64_t offset, std::uint32_t max_len) {
  assert(initialised_ && rank < size());
  progress();  // be current before matching
  auto req = std::make_unique<Pending>();
  req->kind = Pending::Kind::Recv;
  req->rank = rank;
  req->want_source = source;
  req->want_tag = tag;
  req->offset = offset;
  req->max_len = max_len;
  const ReqId id = next_req_++;

  // First look for an already-arrived message (arrival order).
  Side& s = *sides_[rank];
  for (auto it = s.unexpected.begin(); it != s.unexpected.end(); ++it) {
    if (!header_matches(it->header, source, tag)) continue;
    const UnexpectedMsg msg = *it;
    s.unexpected.erase(it);
    // Late match: re-adopt the context the message carried when it arrived.
    const obs::ScopedTraceContext late_ctx(
        cluster_.node(nodes_[rank]).kernel().spans(),
        obs::TraceContext{msg.header.trace_id, msg.header.span_id, 0});
    if (msg.header.kind == MsgKind::Eager) {
      (void)deliver_eager(rank, msg, *req);
      s.free_arena_slot(msg.arena_slot);
    } else if (s.links[msg.header.src_rank].local) {
      (void)deliver_local_pull(rank, msg.header, *req);
    } else {
      (void)deliver_rendezvous(rank, msg.header, *req);
    }
    requests_.emplace(id, std::move(req));
    progress();  // the FIN may complete a sender right away
    return id;
  }

  s.posted.push_back(id);
  requests_.emplace(id, std::move(req));
  return id;
}

bool Comm::test(ReqId req, MpStatus* status) {
  progress();
  auto it = requests_.find(req);
  if (it == requests_.end()) return false;
  if (!it->second->complete) return false;
  if (status) *status = it->second->status;
  return true;
}

bool Comm::wait(ReqId req, MpStatus* status) {
  // Synchronous simulation: one progress pass is all the forward motion
  // there is. A request that stays incomplete needs a remote operation that
  // has not been issued yet - a deadlock in real MPI too.
  if (test(req, status)) {
    const bool failed = requests_.at(req)->failed;
    requests_.erase(req);
    return !failed;
  }
  return false;
}

KStatus Comm::send(Rank rank, Rank dest, std::int32_t tag,
                   std::uint64_t offset, std::uint32_t len) {
  const ReqId id = isend(rank, dest, tag, offset, len);
  // Eager completes immediately; rendezvous completes once the receiver
  // posts. A blocking send that cannot finish yet stays pending - callers
  // pair it with a recv and the FIN resolves it; report current state.
  MpStatus st;
  return test(id, &st) && wait(id) ? KStatus::Ok : KStatus::Again;
}

KStatus Comm::recv(Rank rank, std::int32_t source, std::int32_t tag,
                   std::uint64_t offset, std::uint32_t max_len,
                   MpStatus* status) {
  const ReqId id = irecv(rank, source, tag, offset, max_len);
  return wait(id, status) ? KStatus::Ok : KStatus::Again;
}

bool Comm::iprobe(Rank rank, std::int32_t source, std::int32_t tag,
                  MpStatus* status) {
  progress();
  Side& s = *sides_[rank];
  for (const auto& msg : s.unexpected) {
    if (header_matches(msg.header, source, tag)) {
      if (status)
        *status = MpStatus{msg.header.src_rank, msg.header.tag, msg.header.len};
      return true;
    }
  }
  return false;
}

}  // namespace vialock::mp
