// collectives.h - collective operations over the matching layer.
//
// Unlike msg::Mesh (which drives channels directly), these are built the way
// real MPI implementations layer them: "a mapping of the collective
// operations, like Barrier or Broadcast, to point-to-point communication"
// (the multidevice paper's device-independent layer). They therefore work
// transparently across the multidevice routing - ranks on one node
// synchronise through shared memory, ranks apart through the fabric.
//
// Internal traffic uses reserved negative tags (user tags must be >= 0, as
// in MPI), so collectives never collide with application point-to-point.
#pragma once

#include <cstdint>

#include "mp/comm.h"

namespace vialock::mp {

/// Reserved internal tags (user tags are >= 0).
inline constexpr std::int32_t kBarrierTag = -100;
inline constexpr std::int32_t kBcastTag = -101;
inline constexpr std::int32_t kReduceTag = -102;
inline constexpr std::int32_t kGatherTag = -103;

/// Dissemination barrier: ceil(log2 N) rounds of token exchanges.
/// `scratch_offset` names 16 bytes of per-rank heap used for the tokens.
[[nodiscard]] KStatus barrier(Comm& comm, std::uint64_t scratch_offset = 0);

/// Binomial-tree broadcast: after return every rank holds the root's `len`
/// bytes at heap `offset`.
[[nodiscard]] KStatus broadcast(Comm& comm, Rank root, std::uint64_t offset,
                                std::uint32_t len);

/// Binomial-tree reduction of `count` u64s at `offset` into the root's heap
/// (element-wise sum). `scratch_offset` must provide count*8 bytes.
[[nodiscard]] KStatus reduce_sum(Comm& comm, Rank root, std::uint64_t offset,
                                 std::uint32_t count,
                                 std::uint64_t scratch_offset);

/// reduce_sum to rank 0 + broadcast: every rank ends with the global sum.
[[nodiscard]] KStatus allreduce_sum(Comm& comm, std::uint64_t offset,
                                    std::uint32_t count,
                                    std::uint64_t scratch_offset);

/// Gather: each rank's `block` bytes at `offset` land at the root's
/// `offset + rank*block`.
[[nodiscard]] KStatus gather(Comm& comm, Rank root, std::uint64_t offset,
                             std::uint32_t block);

}  // namespace vialock::mp
