// comm.h - an MPI-flavoured message-passing layer with real matching
// semantics, built directly on the VIA provider library.
//
// This is the layer the paper's introduction argues about: "MPI cannot
// predict [the buffer addresses]... hence the buffers must be registered on
// the fly". The companion papers in the collection supply the design
// vocabulary reproduced here:
//   * tag + source matching with MPI_ANY_SOURCE / MPI_ANY_TAG, a posted-
//     receive queue and an unexpected-message queue (the multidevice paper's
//     AnyQueue problem space);
//   * an eager protocol for short messages (one copy into a pre-registered
//     bounce slot per side) and a rendezvous protocol for long ones
//     (registration through the cache + RDMA *pull* by the receiver, true
//     zero-copy);
//   * nonblocking isend/irecv with request objects and test/wait.
//
// The simulation is single-threaded: the Comm object orchestrates every
// rank. progress() drains NIC completions into the matching engine; isend/
// irecv/test/wait all call it, mirroring MPICH's "communication progresses
// only when an MPI function is called".
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/reg_cache.h"
#include "via/node.h"
#include "via/vipl.h"

namespace vialock::mp {

using Rank = std::uint32_t;
inline constexpr std::int32_t kAnyTag = -1;
inline constexpr std::int32_t kAnySource = -1;

using ReqId = std::uint64_t;
inline constexpr ReqId kInvalidReq = 0;

struct MpStatus {
  Rank source = 0;
  std::int32_t tag = 0;
  std::uint32_t len = 0;
};

struct CommStats {
  std::uint64_t eager_sends = 0;
  std::uint64_t rendezvous_sends = 0;
  std::uint64_t unexpected_msgs = 0;  ///< arrived before a matching receive
  std::uint64_t expected_msgs = 0;    ///< matched a posted receive on arrival
  std::uint64_t rdma_pulls = 0;
  std::uint64_t local_msgs = 0;       ///< delivered over a shared-memory link
  std::uint64_t local_pulls = 0;      ///< large local messages (shm pipeline)
  std::uint64_t indirect_sends = 0;   ///< messages that needed routing
  std::uint64_t indirect_forwards = 0;  ///< hops executed by intermediates
  std::uint64_t bytes = 0;
};

class Comm {
 public:
  struct Config {
    std::uint32_t eager_threshold = 4 * 1024;
    std::uint32_t eager_slot_size = 8 * 1024;
    std::uint32_t eager_credits = 8;     ///< pre-posted receives per VI
    std::uint32_t unexpected_slots = 64; ///< per-rank unexpected arena slots
    std::uint64_t heap_bytes = 4ULL << 20;
    core::EvictionPolicy cache_policy = core::EvictionPolicy::Lru;
    /// Multidevice routing (the collection's first paper): ranks that share
    /// a node communicate over a shared-memory link instead of the NIC; the
    /// "Connectiontable" decides per peer at init time.
    bool shm_for_local = true;
    std::uint32_t local_bounce_bytes = 64 * 1024;  ///< shm pipeline buffer
    /// Rank pairs WITHOUT a direct link (unordered). Traffic between them is
    /// routed through intermediate ranks using system messages - the
    /// "indirekte Kommunikation" design of the multidevice paper: one-sided
    /// system messages with reserved tags, an implicit receive on the
    /// intermediate node, and an acknowledgement chain back to the sender.
    std::vector<std::pair<Rank, Rank>> no_direct_link;
    /// Create each pair's link on first send instead of all N*(N-1)/2 at
    /// init() - required for cluster-scale scenarios where most pairs never
    /// talk. Incompatible with no_direct_link (init returns Inval): lazy
    /// creation makes every pair direct, so there is nothing to route.
    bool lazy_links = false;
  };

  Comm(via::Cluster& cluster, std::vector<via::NodeId> nodes, Config config);
  Comm(via::Cluster& cluster, std::vector<via::NodeId> nodes)
      : Comm(cluster, std::move(nodes), Config{}) {}
  ~Comm();

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] KStatus init();
  [[nodiscard]] Rank size() const { return static_cast<Rank>(nodes_.size()); }

  // --- application data (per-rank heaps) -----------------------------------------
  [[nodiscard]] KStatus stage(Rank rank, std::uint64_t offset,
                              std::span<const std::byte> data);
  [[nodiscard]] KStatus fetch(Rank rank, std::uint64_t offset,
                              std::span<std::byte> out);

  // --- nonblocking point-to-point ---------------------------------------------
  /// Post a send of `len` bytes at `rank`'s heap `offset` to `dest`.
  /// User tags must be >= 0 (negative tags are reserved for collectives and
  /// system messages, as in MPI); violating that returns kInvalidReq.
  [[nodiscard]] ReqId isend(Rank rank, Rank dest, std::int32_t tag,
                            std::uint64_t offset, std::uint32_t len);
  /// Post a receive into `rank`'s heap `offset` (capacity `max_len`) from
  /// `source` (or kAnySource) with `tag` (or kAnyTag).
  [[nodiscard]] ReqId irecv(Rank rank, std::int32_t source, std::int32_t tag,
                            std::uint64_t offset, std::uint32_t max_len);

  /// Library-internal variants that may use reserved (negative) tags; the
  /// collectives in mp/collectives.h are built on these.
  [[nodiscard]] ReqId isend_internal(Rank rank, Rank dest, std::int32_t tag,
                                     std::uint64_t offset, std::uint32_t len);
  [[nodiscard]] ReqId irecv_internal(Rank rank, std::int32_t source,
                                     std::int32_t tag, std::uint64_t offset,
                                     std::uint32_t max_len);

  /// True when the request has completed; fills `status` for receives.
  [[nodiscard]] bool test(ReqId req, MpStatus* status = nullptr);
  /// Drive progress until the request completes; false if it cannot (error).
  [[nodiscard]] bool wait(ReqId req, MpStatus* status = nullptr);

  // --- blocking convenience -----------------------------------------------------
  /// Blocking send/recv. The simulation is single-threaded, so "blocking"
  /// means: drive progress once and report. A call that cannot complete
  /// without a remote operation that has not been issued yet (e.g. a
  /// rendezvous send whose receive is not posted, or a recv whose message
  /// has not been sent) returns Again - the situation that would deadlock a
  /// real MPI program too. Sequence isend/irecv + wait for such patterns.
  [[nodiscard]] KStatus send(Rank rank, Rank dest, std::int32_t tag,
                             std::uint64_t offset, std::uint32_t len);
  [[nodiscard]] KStatus recv(Rank rank, std::int32_t source, std::int32_t tag,
                             std::uint64_t offset, std::uint32_t max_len,
                             MpStatus* status = nullptr);

  /// Nonblocking probe: is a matching message available at `rank`?
  [[nodiscard]] bool iprobe(Rank rank, std::int32_t source, std::int32_t tag,
                            MpStatus* status = nullptr);

  /// Drain NIC completions into the matching engines of every rank.
  void progress();

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  [[nodiscard]] simkern::Pid rank_pid(Rank r) const;
  /// The simulated kernel hosting `r` (ranks on one node share a kernel).
  /// Collectives and tests reach each rank's observability surface through
  /// this; the communicator's own metrics live on rank 0's registry.
  [[nodiscard]] simkern::Kernel& rank_kernel(Rank r) {
    return cluster_.node(nodes_[r]).kernel();
  }
  /// Connectiontable lookup: does the pair communicate over shared memory?
  [[nodiscard]] bool uses_shm(Rank a, Rank b) const;
  /// Connectiontable lookup: is there a direct link at all?
  [[nodiscard]] bool has_direct_link(Rank a, Rank b) const;
  /// The next hop `from` uses toward `to` (== `to` when direct;
  /// kNoRoute when unreachable).
  static constexpr Rank kNoRoute = static_cast<Rank>(-1);
  [[nodiscard]] Rank route_next(Rank from, Rank to) const;

 private:
  struct Side;     // per-rank state (Vipl, cache, queues, arena)
  struct Pending;  // request bookkeeping

  enum class MsgKind : std::uint32_t { Eager, RndzReq, RndzFin };

  /// Reserved system-message tags (never visible to matching).
  static constexpr std::int32_t kSysFwdTag = -2;
  static constexpr std::int32_t kSysAckTag = -3;

  /// Inner header of a routed (indirect) message.
  struct SysEnvelope {
    Rank final_dest = 0;
    Rank orig_src = 0;
    std::int32_t orig_tag = 0;
    std::uint32_t len = 0;          ///< user payload bytes
    ReqId sender_req = kInvalidReq; ///< completed by the end-to-end ACK
  };

  /// Wire header prefixed to every eager slot payload.
  struct WireHeader {
    MsgKind kind = MsgKind::Eager;
    std::int32_t tag = 0;
    Rank src_rank = 0;
    std::uint32_t len = 0;          ///< payload (eager) or message (rndz) size
    ReqId sender_req = kInvalidReq; ///< rendezvous: sender's request to FIN
    via::MemHandle handle;          ///< rendezvous: sender's registration
    simkern::VAddr addr = 0;        ///< rendezvous: source address
    /// In-band trace context (DESIGN.md section 11): the sending rank's
    /// ambient context travels inside the header bytes, so the receiving
    /// rank's spans join the sender's causal chain without side channels.
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
  };

  /// An arrived-but-unmatched message at a rank.
  struct UnexpectedMsg {
    WireHeader header;
    std::uint32_t arena_slot = 0;  ///< eager payload location (Eager only)
  };

  [[nodiscard]] KStatus push_wire(Rank from, Rank to, const WireHeader& header,
                                  std::uint64_t payload_offset);
  /// Like push_wire, but the payload comes from an absolute address in
  /// `from`'s address space (used for forwarding out of landing slots).
  [[nodiscard]] KStatus push_raw(Rank from, Rank to, const WireHeader& header,
                                 simkern::VAddr src_addr,
                                 std::uint32_t payload_len);
  /// System-message handler (forward / ack); true if the header was one.
  [[nodiscard]] bool handle_system(Rank rank, const WireHeader& header,
                                   simkern::VAddr slot_addr);
  /// Build the (i, j) link if it does not exist yet: a shared-memory
  /// segment for node-local pairs, otherwise a VI pair with pre-posted
  /// credits. Idempotent; init() calls it eagerly for every pair unless
  /// Config::lazy_links defers it to the first send.
  [[nodiscard]] KStatus ensure_link(Rank i, Rank j);
  [[nodiscard]] ReqId isend_indirect(Rank rank, Rank dest, std::int32_t tag,
                                     std::uint64_t offset, std::uint32_t len);
  /// Drain one rank's incoming links; true if anything was processed.
  [[nodiscard]] bool drain(Rank rank);
  void process_arrival(Rank rank, const WireHeader& header,
                       simkern::VAddr slot_addr);
  [[nodiscard]] bool header_matches(const WireHeader& h, std::int32_t source,
                                    std::int32_t tag) const;
  [[nodiscard]] KStatus deliver_eager(Rank rank, const UnexpectedMsg& msg,
                                      Pending& recv);
  [[nodiscard]] KStatus deliver_rendezvous(Rank rank, const WireHeader& req,
                                           Pending& recv);
  /// Large local message: pipeline copies through the link's shm bounce.
  [[nodiscard]] KStatus deliver_local_pull(Rank rank, const WireHeader& req,
                                           Pending& recv);

  via::Cluster& cluster_;
  std::vector<via::NodeId> nodes_;
  Config config_;
  CommStats stats_;

  std::vector<std::unique_ptr<Side>> sides_;
  std::map<ReqId, std::unique_ptr<Pending>> requests_;
  /// In-flight slot indices per local (shm) link, one queue per direction
  /// (index 0: lower rank -> higher rank). Stands in for the in-segment
  /// flag words; the data itself travels through the shared frames.
  std::map<std::pair<Rank, Rank>,
           std::unique_ptr<std::array<std::deque<std::uint32_t>, 2>>>
      local_queues_;
  /// next_hop_[from][to]: first hop on the route (== to when direct).
  std::vector<std::vector<Rank>> next_hop_;
  ReqId next_req_ = 1;
  bool initialised_ = false;
};

}  // namespace vialock::mp
